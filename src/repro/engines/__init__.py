"""Simulation engines.

Four engines run the same :class:`~repro.schedule.FlatProgram`:

* :mod:`~repro.engines.sse` — the interpreted baseline, modelling
  Simulink's simulation engine (SSE): per-step, per-actor object dispatch
  with full runtime diagnostics and coverage collection;
* :mod:`~repro.engines.sse_ac` — Accelerator-mode analog: actors
  precompiled to closures ("MEX-like"), per-step host synchronization, no
  diagnostics/coverage;
* :mod:`~repro.engines.sse_rac` — Rapid-Accelerator analog: whole-model
  generated Python, batched execution with periodic host data transfer, no
  diagnostics/coverage;
* :mod:`~repro.engines.accmos` — the paper's system: instrumented C code
  generated from the template library, compiled with gcc -O3, executed,
  results parsed back.

All four return a :class:`~repro.engines.base.SimulationResult` with the
same schema; the equivalence test suite pins SSE and AccMoS to identical
outputs, coverage bitmaps, and diagnostics.
"""

from repro.engines.base import SimulationOptions, SimulationResult, signal_bits
from repro.engines.sse import run_sse
from repro.engines.sse_ac import run_sse_ac
from repro.engines.sse_rac import run_sse_rac
from repro.engines.accmos import (
    AccMoSArtifacts,
    CompiledModel,
    compile_model,
    run_accmos,
)
from repro.engines.api import ENGINES, simulate

__all__ = [
    "SimulationOptions",
    "SimulationResult",
    "signal_bits",
    "run_sse",
    "run_sse_ac",
    "run_sse_rac",
    "run_accmos",
    "AccMoSArtifacts",
    "CompiledModel",
    "compile_model",
    "simulate",
    "ENGINES",
]

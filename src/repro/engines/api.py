"""One-call simulation front door."""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.engines.accmos import run_accmos
from repro.engines.base import SimulationOptions, SimulationResult
from repro.engines.sse import run_sse
from repro.engines.sse_ac import run_sse_ac
from repro.engines.sse_rac import run_sse_rac
from repro.model.model import Model
from repro.schedule.compile import preprocess
from repro.schedule.program import FlatProgram
from repro.stimuli.base import Stimulus
from repro.stimuli.generators import default_stimuli

ENGINES = {
    "sse": run_sse,
    "sse_ac": run_sse_ac,
    "sse_rac": run_sse_rac,
    "accmos": run_accmos,
}


def simulate(
    model: Union[Model, FlatProgram],
    stimuli: Optional[Mapping[str, Stimulus]] = None,
    *,
    engine: str = "accmos",
    options: Optional[SimulationOptions] = None,
    dt: float = 1.0,
    **option_kwargs,
) -> SimulationResult:
    """Simulate a model with the chosen engine.

    ``model`` may be a :class:`Model` (preprocessed here) or an already
    preprocessed :class:`FlatProgram`.  ``stimuli`` defaults to seeded
    random streams per inport.  Remaining keyword arguments construct the
    :class:`SimulationOptions` (e.g. ``steps=100_000``).
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {sorted(ENGINES)}")
    if options is not None and option_kwargs:
        raise ValueError("pass either options= or option keyword arguments, not both")
    prog = model if isinstance(model, FlatProgram) else preprocess(model, dt=dt)
    if stimuli is None:
        stimuli = default_stimuli(prog)
    opts = options or SimulationOptions(**option_kwargs)
    return ENGINES[engine](prog, stimuli, opts)

"""The interpreted simulation engine — the SSE baseline.

This engine is the library's *reference semantics*: it steps the flattened
program actor by actor through Python object dispatch, evaluating guards,
collecting all four coverage metrics, and running every applicable
diagnosis each step — the same work Simulink's normal-mode engine performs
interpretively, and the same cost model the paper attributes to it.

Everything observable (outputs, checksums, coverage bitmaps, diagnostics,
halt steps) is defined here first; the other engines — including AccMoS's
generated C — must reproduce it exactly.
"""

from __future__ import annotations

import time
from typing import Mapping

from repro import telemetry
from repro.actors.base import BindContext, StoreBank
from repro.actors.registry import get_spec
from repro.coverage.bitmap import Bitmap
from repro.coverage.mcdc import mcdc_sides
from repro.coverage.metrics import Metric
from repro.coverage.report import CoverageReport
from repro.diagnosis.events import FLAG_KINDS, DiagnosticKind, DiagnosticLog
from repro.dtypes import checked_cast, coerce_float
from repro.engines.base import (
    SimulationOptions,
    SimulationResult,
    checksum_step,
    signal_bits,
)
from repro.instrument import build_plan
from repro.model.errors import SimulationError
from repro.schedule.program import EvalGuard, FlatProgram
from repro.stimuli.base import Stimulus

_TIME_CHECK_INTERVAL = 512


def _bind_all(prog: FlatProgram):
    """Instantiate semantics and initial state for every flat actor."""
    stores = StoreBank()
    for info in prog.stores.values():
        initial = info.initial
        if info.dtype.is_float:
            initial = coerce_float(float(initial), info.dtype)
        else:
            from repro.actors.math_ops import int_param

            initial = int_param(initial, info.dtype)
        stores.declare(info.name, info.dtype, initial)

    semantics = []
    states = []
    for fa in prog.actors:
        ctx = BindContext(
            in_dtypes=tuple(prog.signals[s].dtype for s in fa.input_sids),
            out_dtypes=tuple(prog.signals[s].dtype for s in fa.output_sids),
            stores=stores,
            dt=prog.dt,
        )
        sem = get_spec(fa.block_type).semantics(fa.actor, ctx)
        semantics.append(sem)
        states.append(sem.init_state())
    return stores, semantics, states


def _check_stimuli(prog: FlatProgram, stimuli: Mapping[str, Stimulus]) -> None:
    missing = [b.name for b in prog.inports if b.name not in stimuli]
    if missing:
        raise SimulationError(f"no stimulus for inport(s): {missing}")


def run_sse(
    prog: FlatProgram,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
) -> SimulationResult:
    """Run the interpreted engine; see module docstring."""
    with telemetry.span(
        "sse.run", model=prog.model.name, steps=options.steps
    ) as run_span:
        result = _run_sse(prog, stimuli, options)
        run_span.set(steps_run=result.steps_run)
    telemetry.counter_inc("engine.sse.runs")
    telemetry.counter_inc("engine.sse.steps", result.steps_run)
    telemetry.counter_inc("diagnostics.events", len(result.diagnostics))
    if result.wall_time > 0:
        telemetry.observe(
            "engine.sse.steps_per_sec", result.steps_run / result.wall_time
        )
    return result


def _run_sse(
    prog: FlatProgram,
    stimuli: Mapping[str, Stimulus],
    options: SimulationOptions,
) -> SimulationResult:
    _check_stimuli(prog, stimuli)
    plan = build_plan(
        prog,
        coverage=options.coverage,
        diagnostics=options.diagnostics,
        collect=options.collect,
        diagnose=options.diagnose,
        custom=options.custom,
    )
    stores, semantics, states = _bind_all(prog)

    signals = [
        0.0 if (s.dtype and s.dtype.is_float) else 0 for s in prog.signals
    ]
    guard_active = [False] * len(prog.guards)

    bitmaps = {
        Metric.ACTOR: Bitmap(plan.points.n_actor),
        Metric.CONDITION: Bitmap(plan.points.n_condition),
        Metric.DECISION: Bitmap(plan.points.n_decision),
        Metric.MCDC: Bitmap(plan.points.n_mcdc),
    }
    actor_bm = bitmaps[Metric.ACTOR]
    cond_bm = bitmaps[Metric.CONDITION]
    dec_bm = bitmaps[Metric.DECISION]
    mcdc_bm = bitmaps[Metric.MCDC]

    log = DiagnosticLog(halt_on=options.halt_on)
    for event in plan.static_warnings:
        log.add_static(event.path, event.kind, event.message)

    monitored: dict[str, list] = {
        inst.path: [] for inst in plan.actors if inst.collect
    }
    monitor_limit = options.monitor_limit

    inport_feeds = [
        (stimuli[b.name], b.sid, b.dtype) for b in prog.inports
    ]
    for stim, _, _ in inport_feeds:
        stim.reset()
    outport_bindings = [(b.name, b.sid, b.dtype) for b in prog.outports]
    checksums = {name: 0 for name, _, _ in outport_bindings}

    stateful = [
        (fa, semantics[fa.index])
        for fa in prog.actors
        if get_spec(fa.block_type).stateful
    ]
    instrumentation = plan.actors
    actors = prog.actors
    order = prog.order
    coverage_on = options.coverage
    diagnostics_on = options.diagnostics

    # Sampling profiler (telemetry): time each actor's evaluation on
    # 1-in-``interval`` steps, attributed to its block type.  Disabled
    # (profiler None => prof_interval 0), the loop pays only the falsy
    # ``sample`` tests below.
    profiler = telemetry.sse_profiler()
    prof_interval = profiler.interval if profiler is not None else 0
    prof_seconds: dict[str, float] = {}
    prof_calls: dict[str, int] = {}
    prof_steps = 0

    halted = False
    steps_run = 0
    start = time.perf_counter()
    deadline = (
        start + options.time_budget if options.time_budget is not None else None
    )

    for step in range(options.steps):
        if deadline is not None and step % _TIME_CHECK_INTERVAL == 0:
            if time.perf_counter() >= deadline:
                break
        sample = prof_interval and step % prof_interval == 0
        if sample:
            prof_steps += 1

        for stim, sid, dtype in inport_feeds:
            signals[sid] = stim.conform(stim.next(), dtype)

        for node in order:
            if isinstance(node, EvalGuard):
                guard = prog.guards[node.gid]
                parent_ok = guard.parent is None or guard_active[guard.parent]
                guard_active[node.gid] = parent_ok and signals[guard.signal] > 0
                continue

            idx = node.actor_index
            fa = actors[idx]
            if fa.guard is not None and not guard_active[fa.guard]:
                continue
            inst = instrumentation[idx]
            bt = fa.block_type
            if sample:
                _prof_t0 = time.perf_counter()

            branch = None
            flags = None
            if bt == "Inport":
                inputs = ()
                outputs = (signals[fa.output_sids[0]],)
            elif bt == "Merge":
                inputs = tuple(signals[s] for s in fa.input_sids)
                chosen = None
                for i, gid in enumerate(fa.merge_src_guards):
                    if gid is None or guard_active[gid]:
                        chosen = i
                if chosen is not None:
                    sem = semantics[idx]
                    dtype = sem.ctx.out_dtypes[0]
                    if dtype.is_float:
                        value = coerce_float(float(inputs[chosen]), dtype)
                    else:
                        value, _ = checked_cast(
                            inputs[chosen], sem.ctx.in_dtypes[chosen], dtype
                        )
                    signals[fa.output_sids[0]] = value
                outputs = (signals[fa.output_sids[0]],)
            else:
                inputs = tuple(signals[s] for s in fa.input_sids)
                outputs, flags, branch = semantics[idx].output(states[idx], inputs)
                for sid, value in zip(fa.output_sids, outputs):
                    signals[sid] = value

            if sample:
                prof_seconds[bt] = (
                    prof_seconds.get(bt, 0.0) + time.perf_counter() - _prof_t0
                )
                prof_calls[bt] = prof_calls.get(bt, 0) + 1

            if coverage_on:
                actor_bm.set(inst.actor_point)
                if inst.condition_base is not None and branch is not None:
                    cond_bm.set(inst.condition_base[0] + branch)
                if inst.decision_base is not None:
                    dec_bm.set(inst.decision_base + (1 if outputs[0] else 0))
                if inst.mcdc_base is not None:
                    truths = tuple(v != 0 for v in inputs)
                    base = inst.mcdc_base[0]
                    for i, side in mcdc_sides(inst.logic_op, truths):
                        mcdc_bm.set(base + 2 * i + (1 if side else 0))

            if diagnostics_on:
                # Check order matches the generated C: FLAG_KINDS order,
                # halting immediately at the first halt-kind occurrence.
                if flags and inst.diagnose_kinds:
                    for flag_name, kind in FLAG_KINDS:
                        if getattr(flags, flag_name) and kind in inst.diagnose_kinds:
                            if log.record(fa.path, kind, step):
                                halted = True
                                break
                if not halted and inst.custom:
                    for diag in inst.custom:
                        if diag.predicate is not None and diag.predicate(
                            step, inputs, outputs
                        ):
                            if log.record(
                                fa.path, DiagnosticKind.CUSTOM, step, diag.message
                            ):
                                halted = True
                                break
                if halted:
                    break

            if inst.collect:
                samples = monitored[inst.path]
                if len(samples) < monitor_limit:
                    value = outputs[0] if outputs else (inputs[0] if inputs else None)
                    samples.append((step, value))

        if halted:
            steps_run = step + 1
            break

        for fa, sem in stateful:
            if fa.guard is not None and not guard_active[fa.guard]:
                continue
            idx = fa.index
            inputs = tuple(signals[s] for s in fa.input_sids)
            outputs = tuple(signals[s] for s in fa.output_sids)
            states[idx] = sem.update(states[idx], inputs, outputs)

        if options.checksum:
            for name, sid, dtype in outport_bindings:
                checksums[name] = checksum_step(
                    checksums[name], signal_bits(signals[sid], dtype)
                )
        steps_run = step + 1

    wall_time = time.perf_counter() - start
    if profiler is not None:
        profiler.add_run(prof_seconds, prof_calls, prof_steps)

    coverage = (
        CoverageReport.from_bitmaps(plan.points, bitmaps) if coverage_on else None
    )
    outputs_final = {
        name: signals[sid] for name, sid, _ in outport_bindings
    }
    return SimulationResult(
        engine="sse",
        model_name=prog.model.name,
        steps_requested=options.steps,
        steps_run=steps_run,
        wall_time=wall_time,
        outputs=outputs_final,
        checksums=checksums if options.checksum else {},
        coverage=coverage,
        diagnostics=log.events(),
        halted_at=log.halted_at,
        monitored=monitored,
    )

"""The coverage metric identifiers."""

from __future__ import annotations

import enum


class Metric(enum.Enum):
    """One of the four Simulink coverage metrics."""

    ACTOR = "actor"
    CONDITION = "condition"
    DECISION = "decision"
    MCDC = "mcdc"

    @property
    def title(self) -> str:
        return {"actor": "Actor", "condition": "Condition",
                "decision": "Decision", "mcdc": "MC/DC"}[self.value]


ALL_METRICS = (Metric.ACTOR, Metric.CONDITION, Metric.DECISION, Metric.MCDC)

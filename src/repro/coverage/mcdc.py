"""Masking MC/DC for combination-condition actors.

For each evaluation of an N-input Logic actor we determine which conditions
*independently affected* the outcome this step — i.e. flipping that input
alone would flip the decision — and which side (the input's current truth
value) that independence was demonstrated on.

Per-operator masking rules (all derivable from the flip test):

* AND / NAND — flipping input *i* flips the outcome iff every other input
  is true.  So: all-true covers every condition's shown-true side; exactly
  one false covers that condition's shown-false side.
* OR / NOR — the dual: all-false covers every shown-false side; exactly
  one true covers that condition's shown-true side.
* XOR — flipping any input always flips the outcome, so every evaluation
  covers each condition's current side.

The generated C instrumentation implements the identical rules inline.
"""

from __future__ import annotations

from typing import Iterator


def mcdc_sides(op: str, truths: tuple[bool, ...]) -> Iterator[tuple[int, bool]]:
    """Yield ``(condition_index, side)`` pairs demonstrated this evaluation.

    ``side`` is the condition's truth value at the demonstrating vector.
    """
    n = len(truths)
    if op in ("AND", "NAND"):
        n_false = sum(1 for t in truths if not t)
        if n_false == 0:
            for i in range(n):
                yield i, True
        elif n_false == 1:
            yield truths.index(False), False
    elif op in ("OR", "NOR"):
        n_true = sum(1 for t in truths if t)
        if n_true == 0:
            for i in range(n):
                yield i, False
        elif n_true == 1:
            yield truths.index(True), True
    elif op == "XOR":
        for i, t in enumerate(truths):
            yield i, t
    # NOT is single-input and never a combination condition.

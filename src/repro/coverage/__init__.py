"""Model coverage: the four Simulink metrics the paper collects (§3.2.A).

* **Actor coverage** — has each executable actor run at least once;
* **Condition coverage** — at branch actors (Switch, MultiportSwitch), has
  each selectable branch been taken;
* **Decision coverage** — at boolean actors (Logic, RelationalOperator,
  Compare*), has each outcome (true/false) been observed;
* **MC/DC** — at combination conditions (Logic actors with two or more
  inputs), has each condition been shown to independently affect the
  outcome, in both directions (masking MC/DC).

Coverage points are enumerated *statically* from a
:class:`~repro.schedule.FlatProgram`, giving every engine (interpreted or
generated-code) an identical bitmap layout, so reports are comparable — and
equality-testable — across engines.
"""

from repro.coverage.bitmap import Bitmap
from repro.coverage.metrics import Metric
from repro.coverage.points import CoveragePoints, enumerate_points
from repro.coverage.mcdc import mcdc_sides
from repro.coverage.report import CoverageReport, MetricReport
from repro.coverage.detail import (
    UncoveredPoint,
    accumulate_coverage,
    coverage_listing,
    uncovered_points,
)

__all__ = [
    "Metric",
    "Bitmap",
    "CoveragePoints",
    "enumerate_points",
    "mcdc_sides",
    "CoverageReport",
    "MetricReport",
    "UncoveredPoint",
    "uncovered_points",
    "coverage_listing",
    "accumulate_coverage",
]

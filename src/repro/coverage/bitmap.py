"""A plain bit set used to record hit coverage points.

The generated C keeps one ``uint8_t`` per point (byte-per-point is faster
to set than bit twiddling and the tables are small); this class mirrors
that layout so parsed results and interpreted results compare directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator

# byte value -> its 8 bits as one byte-per-bit chunk, LSB first; lets
# word decoding run 8 points per Python iteration instead of 1.
_BYTE_BITS = [bytes((byte >> k) & 1 for k in range(8)) for byte in range(256)]


class Bitmap:
    """Fixed-size hit table."""

    __slots__ = ("_bits",)

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("bitmap size must be non-negative")
        self._bits = bytearray(size)

    @classmethod
    def from_hits(cls, size: int, hits: Iterable[int]) -> "Bitmap":
        bm = cls(size)
        for index in hits:
            bm.set(index)
        return bm

    @classmethod
    def from_words(cls, size: int, words: Iterable[int]) -> "Bitmap":
        """From 64-bit words, bit ``i`` of word ``w`` = point ``w*64+i``
        (the generated programs' ``cov`` wire format)."""
        bm = cls(size)
        buf = bytearray()
        for word in words:
            for byte in word.to_bytes(8, "little"):
                buf += _BYTE_BITS[byte]
        del buf[size:]
        if len(buf) < size:
            buf.extend(bytes(size - len(buf)))
        bm._bits = buf
        return bm

    def __len__(self) -> int:
        return len(self._bits)

    def set(self, index: int) -> None:
        self._bits[index] = 1

    def test(self, index: int) -> bool:
        return bool(self._bits[index])

    def count(self) -> int:
        return sum(self._bits)

    def hit_indices(self) -> Iterator[int]:
        return (i for i, b in enumerate(self._bits) if b)

    def merge(self, other: "Bitmap") -> None:
        """OR another bitmap of the same size into this one."""
        if len(other) != len(self):
            raise ValueError(
                f"bitmap size mismatch: {len(self)} vs {len(other)}"
            )
        for i, b in enumerate(other._bits):
            if b:
                self._bits[i] = 1

    def or_into(self, target: "Bitmap") -> int:
        """OR this bitmap into ``target``; returns how many points were
        newly set there (the AFL-style novelty of this run against the
        accumulated map)."""
        if len(target) != len(self):
            raise ValueError(
                f"bitmap size mismatch: {len(self)} vs {len(target)}"
            )
        tbits = target._bits
        novel = 0
        for i, b in enumerate(self._bits):
            if b and not tbits[i]:
                tbits[i] = 1
                novel += 1
        return novel

    def new_bits(self, baseline: "Bitmap") -> int:
        """Points set here but not in ``baseline`` — novelty without
        mutating either side (``or_into``'s read-only counterpart)."""
        if len(baseline) != len(self):
            raise ValueError(
                f"bitmap size mismatch: {len(self)} vs {len(baseline)}"
            )
        bbits = baseline._bits
        return sum(1 for i, b in enumerate(self._bits) if b and not bbits[i])

    def to_words(self) -> list[int]:
        """Pack into 64-bit words, the inverse of :meth:`from_words`
        (and the generated programs' ``cov`` wire format)."""
        words = []
        bits = self._bits
        for base in range(0, len(bits), 64):
            word = 0
            for i, b in enumerate(bits[base:base + 64]):
                if b:
                    word |= 1 << i
            words.append(word)
        return words

    def copy(self) -> "Bitmap":
        bm = Bitmap(0)
        bm._bits = bytearray(self._bits)
        return bm

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self._bits == other._bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bitmap({self.count()}/{len(self)})"

"""Static enumeration of coverage points over a flattened program.

The layout is purely a function of the program (execution-order-stable
actor indices), so the interpreted engine and the generated C agree on
every point id without any handshake:

* actor metric: one point per executable flat actor;
* condition metric: one point per selectable branch of each branch actor;
* decision metric: two points (false, true outcome) per boolean actor;
* MC/DC metric: two points (shown-false, shown-true independence) per
  condition of each combination-condition actor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.actors.registry import get_spec
from repro.coverage.metrics import Metric
from repro.schedule.program import FlatProgram


@dataclass
class CoveragePoints:
    """Point tables for one program."""

    # actor_index -> point id (actor metric)
    actor_point: dict[int, int] = field(default_factory=dict)
    # actor_index -> (base point id, branch count) (condition metric)
    condition_base: dict[int, tuple[int, int]] = field(default_factory=dict)
    # actor_index -> base point id; base+0 = false outcome, base+1 = true
    decision_base: dict[int, int] = field(default_factory=dict)
    # actor_index -> (base point id, condition count); condition i's
    # shown-false side is base+2i, shown-true side is base+2i+1
    mcdc_base: dict[int, tuple[int, int]] = field(default_factory=dict)

    n_actor: int = 0
    n_condition: int = 0
    n_decision: int = 0
    n_mcdc: int = 0

    def total(self, metric: Metric) -> int:
        return {
            Metric.ACTOR: self.n_actor,
            Metric.CONDITION: self.n_condition,
            Metric.DECISION: self.n_decision,
            Metric.MCDC: self.n_mcdc,
        }[metric]


def branch_count(block_type: str, n_inputs: int) -> int:
    """Number of selectable branches of a branch actor."""
    if block_type in ("Switch", "Relay"):
        return 2
    if block_type == "MultiportSwitch":
        return n_inputs - 1  # input 0 is the control
    raise ValueError(f"{block_type} is not a branch actor")


def enumerate_points(prog: FlatProgram) -> CoveragePoints:
    """Assign point ids in flat-actor order."""
    points = CoveragePoints()
    for fa in prog.actors:
        spec = get_spec(fa.block_type)
        points.actor_point[fa.index] = points.n_actor
        points.n_actor += 1
        if spec.is_branch:
            n = branch_count(fa.block_type, fa.actor.n_inputs)
            points.condition_base[fa.index] = (points.n_condition, n)
            points.n_condition += n
        if spec.boolean_logic:
            points.decision_base[fa.index] = points.n_decision
            points.n_decision += 2
        if spec.combination_condition and fa.actor.n_inputs >= 2:
            n = fa.actor.n_inputs
            points.mcdc_base[fa.index] = (points.n_mcdc, n)
            points.n_mcdc += 2 * n
    return points

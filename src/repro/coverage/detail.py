"""Detailed, human-readable coverage findings.

Percentages say *how much* is covered; developers need *what isn't*.
:func:`uncovered_points` resolves every missed point back to its actor
path and meaning ("branch 1 (else) never taken", "condition 2 never shown
to independently drive the decision to false"), and
:func:`coverage_listing` renders the full per-actor report.

:func:`accumulate_coverage` runs several test cases (stimuli sets) against
one program and merges their coverage — the test-suite-adequacy workflow
the paper motivates coverage collection with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.coverage.metrics import Metric
from repro.coverage.report import CoverageReport
from repro.schedule.program import FlatProgram


@dataclass(frozen=True)
class UncoveredPoint:
    """One coverage point that never fired."""

    metric: Metric
    actor_path: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.metric.title}] {self.actor_path}: {self.detail}"


def _branch_label(block_type: str, branch: int, n_branches: int) -> str:
    if block_type == "Switch":
        return "then (control >= threshold)" if branch == 0 else "else"
    return f"case {branch}"


def uncovered_points(
    prog: FlatProgram, report: CoverageReport
) -> list[UncoveredPoint]:
    """Every missed point, resolved to actor paths and meanings."""
    points = report.points
    findings: list[UncoveredPoint] = []

    actor_bm = report.bitmaps[Metric.ACTOR]
    for fa in prog.actors:
        if not actor_bm.test(points.actor_point[fa.index]):
            findings.append(
                UncoveredPoint(Metric.ACTOR, fa.path, "never executed")
            )

    cond_bm = report.bitmaps[Metric.CONDITION]
    for fa in prog.actors:
        base_n = points.condition_base.get(fa.index)
        if base_n is None:
            continue
        base, n = base_n
        for branch in range(n):
            if not cond_bm.test(base + branch):
                findings.append(
                    UncoveredPoint(
                        Metric.CONDITION, fa.path,
                        f"branch never taken: "
                        f"{_branch_label(fa.block_type, branch, n)}",
                    )
                )

    dec_bm = report.bitmaps[Metric.DECISION]
    for fa in prog.actors:
        base = points.decision_base.get(fa.index)
        if base is None:
            continue
        for outcome, label in ((0, "false"), (1, "true")):
            if not dec_bm.test(base + outcome):
                findings.append(
                    UncoveredPoint(
                        Metric.DECISION, fa.path,
                        f"outcome never observed: {label}",
                    )
                )

    mcdc_bm = report.bitmaps[Metric.MCDC]
    for fa in prog.actors:
        base_n = points.mcdc_base.get(fa.index)
        if base_n is None:
            continue
        base, n = base_n
        for condition in range(n):
            for side, label in ((0, "false"), (1, "true")):
                if not mcdc_bm.test(base + 2 * condition + side):
                    findings.append(
                        UncoveredPoint(
                            Metric.MCDC, fa.path,
                            f"condition {condition} (input {condition}) never "
                            f"shown to independently drive the decision "
                            f"{label}",
                        )
                    )
    return findings


def coverage_listing(
    prog: FlatProgram,
    report: CoverageReport,
    *,
    max_items: Optional[int] = None,
) -> str:
    """A readable report: the four percentages plus every missed point."""
    lines = [report.summary()]
    findings = uncovered_points(prog, report)
    if not findings:
        lines.append("every coverage point hit")
        return "\n".join(lines)
    shown = findings if max_items is None else findings[:max_items]
    lines.append(f"uncovered points ({len(findings)}):")
    lines.extend(f"  {finding}" for finding in shown)
    if max_items is not None and len(findings) > max_items:
        lines.append(f"  ... and {len(findings) - max_items} more")
    return "\n".join(lines)


def accumulate_coverage(
    prog: FlatProgram,
    stimuli_sets: Iterable[Mapping],
    *,
    engine: str = "accmos",
    steps: int = 10_000,
) -> tuple[CoverageReport, list[CoverageReport]]:
    """Run several test cases; returns (merged report, per-run reports).

    This is the test-suite adequacy loop: each stimuli set is one test
    case, and the merged report says whether the suite as a whole is
    comprehensive enough (the paper's stated purpose for coverage).
    """
    from repro.engines import simulate

    per_run: list[CoverageReport] = []
    merged: Optional[CoverageReport] = None
    for stimuli in stimuli_sets:
        result = simulate(prog, dict(stimuli), engine=engine, steps=steps)
        if result.coverage is None:
            raise ValueError(f"engine {engine!r} collects no coverage")
        per_run.append(result.coverage)
        if merged is None:
            merged = CoverageReport.empty(result.coverage.points)
        merged.merge(result.coverage)
    if merged is None:
        raise ValueError("no stimuli sets supplied")
    return merged, per_run

"""Coverage reports: bitmaps aggregated into the numbers Table 3 shows."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coverage.bitmap import Bitmap
from repro.coverage.metrics import ALL_METRICS, Metric
from repro.coverage.points import CoveragePoints


@dataclass
class MetricReport:
    """Covered/total for one metric."""

    metric: Metric
    covered: int
    total: int

    @property
    def percent(self) -> float:
        """Percentage covered; an empty metric counts as fully covered."""
        if self.total == 0:
            return 100.0
        return 100.0 * self.covered / self.total

    def __str__(self) -> str:
        return f"{self.metric.title}: {self.covered}/{self.total} ({self.percent:.1f}%)"


@dataclass
class CoverageReport:
    """All four metrics plus the raw bitmaps for detailed inspection."""

    bitmaps: dict[Metric, Bitmap]
    points: CoveragePoints = None  # type: ignore[assignment]
    metrics: dict[Metric, MetricReport] = field(default_factory=dict)

    @classmethod
    def from_bitmaps(
        cls, points: CoveragePoints, bitmaps: dict[Metric, Bitmap]
    ) -> "CoverageReport":
        report = cls(bitmaps=bitmaps, points=points)
        for metric in ALL_METRICS:
            bm = bitmaps[metric]
            report.metrics[metric] = MetricReport(metric, bm.count(), len(bm))
        return report

    @classmethod
    def empty(cls, points: CoveragePoints) -> "CoverageReport":
        bitmaps = {
            Metric.ACTOR: Bitmap(points.n_actor),
            Metric.CONDITION: Bitmap(points.n_condition),
            Metric.DECISION: Bitmap(points.n_decision),
            Metric.MCDC: Bitmap(points.n_mcdc),
        }
        return cls.from_bitmaps(points, bitmaps)

    def percent(self, metric: Metric) -> float:
        return self.metrics[metric].percent

    def merge(self, other: "CoverageReport") -> None:
        """Accumulate another run's hits into this report (same program)."""
        for metric in ALL_METRICS:
            self.bitmaps[metric].merge(other.bitmaps[metric])
            bm = self.bitmaps[metric]
            self.metrics[metric] = MetricReport(metric, bm.count(), len(bm))

    def mcdc_covered_conditions(self) -> int:
        """Conditions whose *both* independence sides were demonstrated.

        ``Metric.MCDC`` percentages count sides individually; this helper
        reports the stricter both-sides condition count.
        """
        bm = self.bitmaps[Metric.MCDC]
        covered = 0
        for base, n in self.points.mcdc_base.values():
            for i in range(n):
                if bm.test(base + 2 * i) and bm.test(base + 2 * i + 1):
                    covered += 1
        return covered

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageReport):
            return NotImplemented
        return self.bitmaps == other.bitmaps

    def summary(self) -> str:
        return ", ".join(str(self.metrics[m]) for m in ALL_METRICS)

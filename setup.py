"""Legacy setup shim: this offline environment lacks the `wheel` package
that pip's PEP 660 editable builds require, so `python setup.py develop`
is the supported editable-install path here."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={"console_scripts": ["accmos=repro.cli:main"]},
)

"""Behavioural tests of the interpreted reference engine."""

from __future__ import annotations

import math

import pytest

from repro import DiagnosticKind, SimulationOptions, simulate
from repro.dtypes import F64, I8, I32
from repro.model import ModelBuilder
from repro.model.errors import SimulationError
from repro.schedule import preprocess
from repro.stimuli import ConstantStimulus, IntRandomStimulus, SequenceStimulus


def _accumulator_prog():
    b = ModelBuilder("Acc")
    x = b.inport("X", dtype=I32)
    acc = b.accumulator("Sum", x, dtype=I32)
    b.outport("Y", acc)
    return preprocess(b.build())


class TestBasics:
    def test_outputs_accumulate(self):
        prog = _accumulator_prog()
        result = simulate(prog, {"X": ConstantStimulus(5)}, engine="sse", steps=10)
        assert result.outputs["Y"] == 50
        assert result.steps_run == 10

    def test_missing_stimulus_rejected(self):
        prog = _accumulator_prog()
        with pytest.raises(SimulationError, match="no stimulus"):
            simulate(prog, {}, engine="sse", steps=1)

    def test_monitoring_outports_by_default(self):
        prog = _accumulator_prog()
        result = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse", steps=5)
        assert result.monitored["Acc_Y"] == [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5)
        ]

    def test_monitor_limit(self):
        prog = _accumulator_prog()
        options = SimulationOptions(steps=100, monitor_limit=7)
        result = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse",
                          options=options)
        assert len(result.monitored["Acc_Y"]) == 7

    def test_checksum_disabled(self):
        prog = _accumulator_prog()
        options = SimulationOptions(steps=5, checksum=False)
        result = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse",
                          options=options)
        assert result.checksums == {}

    def test_time_budget_stops_early(self):
        prog = _accumulator_prog()
        options = SimulationOptions(steps=10**9, time_budget=0.05)
        result = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse",
                          options=options)
        assert 0 < result.steps_run < 10**9
        assert result.wall_time < 2.0

    def test_steps_per_second(self):
        prog = _accumulator_prog()
        result = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse", steps=100)
        assert result.steps_per_second > 0


class TestDiagnosticsAndHalt:
    def test_overflow_detected_at_exact_step(self):
        prog = _accumulator_prog()
        # 2**31 / 10**6 = 2147.48... -> wraps on step 2148 (0-indexed 2147).
        result = simulate(prog, {"X": ConstantStimulus(10**6)}, engine="sse",
                          steps=3000)
        event = result.diagnostic("Acc_Sum", DiagnosticKind.WRAP_ON_OVERFLOW)
        assert event.first_step == 2147
        assert result.first_detection_step() == 2147

    def test_halt_on_stops_simulation(self):
        prog = _accumulator_prog()
        options = SimulationOptions(
            steps=10**6,
            halt_on=frozenset({DiagnosticKind.WRAP_ON_OVERFLOW}),
        )
        result = simulate(prog, {"X": ConstantStimulus(10**6)}, engine="sse",
                          options=options)
        assert result.halted_at == 2147
        assert result.steps_run == 2148

    def test_halt_ignores_other_kinds(self):
        prog = _accumulator_prog()
        options = SimulationOptions(
            steps=3000, halt_on=frozenset({DiagnosticKind.DIV_BY_ZERO})
        )
        result = simulate(prog, {"X": ConstantStimulus(10**6)}, engine="sse",
                          options=options)
        assert result.halted_at is None
        assert result.steps_run == 3000

    def test_diagnostics_disabled_means_no_events(self):
        prog = _accumulator_prog()
        options = SimulationOptions(steps=3000, diagnostics=False)
        result = simulate(prog, {"X": ConstantStimulus(10**6)}, engine="sse",
                          options=options)
        assert result.diagnostics == []

    def test_custom_diagnosis_fires(self):
        from repro.diagnosis.custom import output_above

        prog = _accumulator_prog()
        options = SimulationOptions(
            steps=20, custom=(output_above("Acc_Sum", 10),)
        )
        result = simulate(prog, {"X": ConstantStimulus(3)}, engine="sse",
                          options=options)
        event = result.diagnostic("Acc_Sum", DiagnosticKind.CUSTOM)
        assert event is not None and event.first_step == 3  # 12 > 10

    def test_division_by_zero_event(self):
        b = ModelBuilder("Div")
        x = b.inport("X", dtype=I32)
        y = b.inport("Y", dtype=I32)
        b.outport("Q", b.div("D", x, y, dtype=I32))
        prog = preprocess(b.build())
        result = simulate(
            prog,
            {"X": ConstantStimulus(6), "Y": SequenceStimulus([2, 0, 3])},
            engine="sse",
            steps=6,
        )
        event = result.diagnostic("Div_D", DiagnosticKind.DIV_BY_ZERO)
        assert event.first_step == 1 and event.count == 2


class TestGuardsAndMerge:
    def _guarded_prog(self):
        b = ModelBuilder("G")
        x = b.inport("X", dtype=I32)
        en = b.relational("En", ">", x, b.constant("Z", 0))
        sub = b.subsystem("S", inputs=[x])
        boosted = sub.inner.gain("Boost", sub.input_ref(0), 10)
        out = sub.set_output(boosted)
        sub.set_enable(en)
        b.outport("Y", out)
        return preprocess(b.build())

    def test_disabled_subsystem_holds_output(self):
        prog = self._guarded_prog()
        stim = SequenceStimulus([5, -1, -2, 3])
        options = SimulationOptions(steps=4, collect="all", monitor_limit=10)
        result = simulate(prog, {"X": stim}, engine="sse", options=options)
        assert [v for _, v in result.monitored["G_Y"]] == [50, 50, 50, 30]

    def test_disabled_actor_not_covered(self):
        prog = self._guarded_prog()
        result = simulate(prog, {"X": ConstantStimulus(-1)}, engine="sse", steps=3)
        from repro.coverage import Metric

        boost = prog.actor_by_path("G_S_Boost")
        points = result.coverage.points
        assert not result.coverage.bitmaps[Metric.ACTOR].test(
            points.actor_point[boost.index]
        )

    def test_stateful_actor_freezes_while_disabled(self):
        b = ModelBuilder("G")
        x = b.inport("X", dtype=I32)
        en = b.relational("En", ">", x, b.constant("Z", 0))
        sub = b.subsystem("S", inputs=[x])
        counter = sub.inner.counter("Cnt", limit=100)
        out = sub.set_output(counter)
        sub.set_enable(en)
        b.outport("Y", out)
        prog = preprocess(b.build())
        stim = SequenceStimulus([1, 1, -1, -1, 1])
        options = SimulationOptions(steps=5, collect="all", monitor_limit=10)
        result = simulate(prog, {"X": stim}, engine="sse", options=options)
        assert [v for _, v in result.monitored["G_Y"]] == [0, 1, 1, 1, 2]

    def test_merge_picks_last_active_and_holds(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        hot = b.relational("Hot", ">", x, b.constant("K", 5))
        cold = b.relational("Cold", "<", x, b.constant("K2", -5))
        s1 = b.subsystem("H", inputs=[x])
        o1 = s1.set_output(s1.inner.gain("G1", s1.input_ref(0), 1))
        s1.set_enable(hot)
        s2 = b.subsystem("C", inputs=[x])
        o2 = s2.set_output(s2.inner.gain("G2", s2.input_ref(0), -1))
        s2.set_enable(cold)
        b.outport("Y", b.merge("Mg", [o1, o2], dtype=I32))
        prog = preprocess(b.build())
        stim = SequenceStimulus([10, -10, 0, 7])
        options = SimulationOptions(steps=4, collect="all", monitor_limit=10)
        result = simulate(prog, {"X": stim}, engine="sse", options=options)
        # hot -> 10; cold -> 10 (negated -10); none -> hold; hot -> 7
        assert [v for _, v in result.monitored["M_Y"]] == [10, 10, 10, 7]


class TestCoverageCollection:
    def test_switch_condition_coverage(self):
        from repro.coverage import Metric

        b = ModelBuilder("C")
        x = b.inport("X", dtype=I32)
        sw = b.switch("Sw", x, x, b.neg("N", x), threshold=0)
        b.outport("Y", sw)
        prog = preprocess(b.build())
        # Always positive control: only branch 0.
        r = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse", steps=5)
        assert r.coverage.metrics[Metric.CONDITION].covered == 1
        # Mixed control: both branches.
        r = simulate(prog, {"X": SequenceStimulus([1, -1])}, engine="sse", steps=5)
        assert r.coverage.metrics[Metric.CONDITION].covered == 2

    def test_decision_coverage_needs_both_outcomes(self):
        from repro.coverage import Metric

        b = ModelBuilder("C")
        x = b.inport("X", dtype=I32)
        b.outport("Y", b.relational("R", ">", x, b.constant("Z", 0)))
        prog = preprocess(b.build())
        r = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse", steps=5)
        assert r.coverage.metrics[Metric.DECISION].covered == 1
        r = simulate(prog, {"X": SequenceStimulus([1, -1])}, engine="sse", steps=5)
        assert r.coverage.metrics[Metric.DECISION].covered == 2

    def test_mcdc_and_gate(self):
        from repro.coverage import Metric

        b = ModelBuilder("C")
        x = b.inport("X", dtype=I32)
        y = b.inport("Y", dtype=I32)
        p = b.relational("P", ">", x, b.constant("Z", 0))
        q = b.relational("Q", ">", y, b.constant("Z2", 0))
        b.outport("O", b.logic("L", "AND", [p, q]))
        prog = preprocess(b.build())

        def run(xs, ys):
            return simulate(
                prog,
                {"X": SequenceStimulus(xs), "Y": SequenceStimulus(ys)},
                engine="sse", steps=len(xs),
            ).coverage.metrics[Metric.MCDC]

        # TT only: both true sides, no false sides -> 2 of 4.
        assert run([1], [1]).covered == 2
        # TT, TF, FT: full independence demonstrated -> 4 of 4.
        assert run([1, 1, -1], [1, -1, 1]).covered == 4
        # FF only: masked, nothing demonstrated.
        assert run([-1], [-1]).covered == 0

    def test_coverage_disabled(self):
        prog = _accumulator_prog()
        options = SimulationOptions(steps=5, coverage=False)
        result = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse",
                          options=options)
        assert result.coverage is None


class TestFloatBehaviour:
    def test_nan_propagates_without_crashing(self):
        b = ModelBuilder("F")
        x = b.inport("X", dtype=F64)
        b.outport("Y", b.math("L", "log", x))
        prog = preprocess(b.build())
        result = simulate(prog, {"X": ConstantStimulus(-1.0)}, engine="sse", steps=3)
        assert math.isnan(result.outputs["Y"])
        event = result.diagnostic("F_L", DiagnosticKind.NON_FINITE)
        assert event is not None and event.count == 3

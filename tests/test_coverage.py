"""Coverage metrics: points, bitmaps, MC/DC masking, reports."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coverage import Bitmap, CoverageReport, Metric, enumerate_points, mcdc_sides
from repro.coverage.metrics import ALL_METRICS
from repro.coverage.points import branch_count
from repro.dtypes import I32
from repro.model import ModelBuilder
from repro.schedule import preprocess


class TestBitmap:
    def test_set_and_count(self):
        bm = Bitmap(8)
        bm.set(0)
        bm.set(5)
        bm.set(5)
        assert bm.count() == 2
        assert bm.test(5) and not bm.test(1)
        assert list(bm.hit_indices()) == [0, 5]

    def test_merge(self):
        a = Bitmap.from_hits(4, [0])
        b = Bitmap.from_hits(4, [3])
        a.merge(b)
        assert list(a.hit_indices()) == [0, 3]

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            Bitmap(3).merge(Bitmap(4))

    def test_copy_is_independent(self):
        a = Bitmap.from_hits(4, [1])
        b = a.copy()
        b.set(2)
        assert not a.test(2)

    def test_equality(self):
        assert Bitmap.from_hits(4, [1]) == Bitmap.from_hits(4, [1])
        assert Bitmap.from_hits(4, [1]) != Bitmap.from_hits(4, [2])

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(-1)


class TestBitmapWords:
    """The 64-bit word codec (from_words/to_words) and the AFL-style
    accumulation primitives (or_into/new_bits) the guided fuzzer uses."""

    def test_from_words_empty(self):
        bm = Bitmap.from_words(0, [])
        assert len(bm) == 0 and bm.count() == 0
        assert bm.to_words() == []

    def test_from_words_size_not_multiple_of_64(self):
        # 70 points span two words; bit 69 is bit 5 of word 1.
        bm = Bitmap.from_words(70, [1 << 63, 1 << 5])
        assert len(bm) == 70
        assert list(bm.hit_indices()) == [63, 69]

    def test_from_words_truncates_trailing_word(self):
        # Bits past `size` in the last word are dropped, not kept.
        bm = Bitmap.from_words(3, [0b1111])
        assert len(bm) == 3
        assert list(bm.hit_indices()) == [0, 1, 2]

    def test_from_words_pads_missing_words(self):
        bm = Bitmap.from_words(130, [0xFF])
        assert len(bm) == 130
        assert bm.count() == 8

    def test_to_words_roundtrip(self):
        for size in (0, 1, 63, 64, 65, 70, 128, 130):
            hits = [i for i in range(size) if i % 7 == 0]
            bm = Bitmap.from_hits(size, hits)
            assert Bitmap.from_words(size, bm.to_words()) == bm

    def test_or_into_counts_only_novel(self):
        target = Bitmap.from_hits(8, [0, 1])
        source = Bitmap.from_hits(8, [1, 2, 3])
        assert source.or_into(target) == 2  # 2 and 3 are new, 1 is not
        assert list(target.hit_indices()) == [0, 1, 2, 3]
        # Second fold of the same source: nothing new.
        assert source.or_into(target) == 0

    def test_or_into_size_mismatch(self):
        with pytest.raises(ValueError):
            Bitmap(3).or_into(Bitmap(4))

    def test_or_into_empty(self):
        assert Bitmap(0).or_into(Bitmap(0)) == 0

    def test_new_bits_does_not_mutate(self):
        baseline = Bitmap.from_hits(8, [0])
        probe = Bitmap.from_hits(8, [0, 4, 5])
        assert probe.new_bits(baseline) == 2
        assert baseline.count() == 1  # read-only

    def test_new_bits_size_mismatch(self):
        with pytest.raises(ValueError):
            Bitmap(3).new_bits(Bitmap(4))

    @given(st.integers(0, 200), st.data())
    def test_or_into_matches_new_bits(self, size, data):
        hits_a = data.draw(st.sets(st.integers(0, max(0, size - 1))))
        hits_b = data.draw(st.sets(st.integers(0, max(0, size - 1))))
        if size == 0:
            hits_a = hits_b = set()
        target = Bitmap.from_hits(size, hits_a)
        source = Bitmap.from_hits(size, hits_b)
        expected = source.new_bits(target)
        assert source.or_into(target) == expected
        assert target == Bitmap.from_hits(size, hits_a | hits_b)


class TestMcdcSides:
    def test_and_all_true_covers_true_sides(self):
        assert set(mcdc_sides("AND", (True, True, True))) == {
            (0, True), (1, True), (2, True)
        }

    def test_and_one_false_covers_that_false_side(self):
        assert set(mcdc_sides("AND", (True, False, True))) == {(1, False)}

    def test_and_two_false_covers_nothing(self):
        assert set(mcdc_sides("AND", (False, False, True))) == set()

    def test_or_duals(self):
        assert set(mcdc_sides("OR", (False, False))) == {(0, False), (1, False)}
        assert set(mcdc_sides("OR", (True, False))) == {(0, True)}
        assert set(mcdc_sides("OR", (True, True))) == set()

    def test_nand_nor_use_same_masking(self):
        assert set(mcdc_sides("NAND", (True, True))) == set(
            mcdc_sides("AND", (True, True))
        )
        assert set(mcdc_sides("NOR", (False, True))) == set(
            mcdc_sides("OR", (False, True))
        )

    def test_xor_every_input_always_independent(self):
        assert set(mcdc_sides("XOR", (True, False))) == {(0, True), (1, False)}

    @given(
        st.sampled_from(["AND", "OR", "NAND", "NOR", "XOR"]),
        st.lists(st.booleans(), min_size=2, max_size=5),
    )
    def test_masking_matches_flip_test(self, op, truths):
        """A condition is demonstrated iff flipping it flips the outcome."""
        from repro.actors.logic_ops import evaluate_logic

        truths = tuple(truths)
        outcome = evaluate_logic(op, truths)
        expected = set()
        for i in range(len(truths)):
            flipped = tuple(
                not t if j == i else t for j, t in enumerate(truths)
            )
            if evaluate_logic(op, flipped) != outcome:
                expected.add((i, truths[i]))
        assert set(mcdc_sides(op, truths)) == expected


class TestPoints:
    def _prog(self):
        b = ModelBuilder("Cov")
        x = b.inport("X", dtype=I32)
        pos = b.relational("Pos", ">", x, b.constant("Z", 0))
        neg = b.relational("Neg", "<", x, b.constant("Z2", 0))
        both = b.logic("Both", "AND", [pos, neg])
        sw = b.switch("Sw", x, both, b.neg("N", x), threshold=1)
        mp = b.multiport_switch("Mp", x, [sw, x, x])
        b.outport("Y", mp)
        return preprocess(b.build())

    def test_actor_points_one_per_flat_actor(self):
        prog = self._prog()
        points = enumerate_points(prog)
        assert points.n_actor == len(prog.actors)
        assert sorted(points.actor_point.values()) == list(range(points.n_actor))

    def test_condition_points(self):
        prog = self._prog()
        points = enumerate_points(prog)
        # Switch: 2 branches; MultiportSwitch with 3 cases: 3 branches.
        assert points.n_condition == 5

    def test_decision_points_two_per_boolean_actor(self):
        prog = self._prog()
        points = enumerate_points(prog)
        # Pos, Neg, Both -> 3 boolean actors.
        assert points.n_decision == 6

    def test_mcdc_points_two_per_condition(self):
        prog = self._prog()
        points = enumerate_points(prog)
        # Only Both (2 inputs) is a combination condition.
        assert points.n_mcdc == 4

    def test_branch_count(self):
        assert branch_count("Switch", 3) == 2
        assert branch_count("MultiportSwitch", 5) == 4
        with pytest.raises(ValueError):
            branch_count("Gain", 1)

    def test_layout_is_deterministic(self):
        prog = self._prog()
        p1 = enumerate_points(prog)
        p2 = enumerate_points(prog)
        assert p1.actor_point == p2.actor_point
        assert p1.condition_base == p2.condition_base
        assert p1.decision_base == p2.decision_base
        assert p1.mcdc_base == p2.mcdc_base


class TestReport:
    def _report(self):
        b = ModelBuilder("R")
        x = b.inport("X", dtype=I32)
        pos = b.relational("Pos", ">", x, b.constant("Z", 0))
        b.outport("Y", pos)
        prog = preprocess(b.build())
        return enumerate_points(prog)

    def test_empty_report(self):
        points = self._report()
        report = CoverageReport.empty(points)
        assert report.percent(Metric.ACTOR) == 0.0
        assert report.metrics[Metric.ACTOR].covered == 0

    def test_zero_total_counts_as_full(self):
        points = self._report()
        report = CoverageReport.empty(points)
        assert report.percent(Metric.MCDC) == 100.0  # no combination conditions

    def test_merge_accumulates_and_recounts(self):
        points = self._report()
        r1 = CoverageReport.empty(points)
        r1.bitmaps[Metric.ACTOR].set(0)
        r2 = CoverageReport.empty(points)
        r2.bitmaps[Metric.ACTOR].set(1)
        r1.merge(r2)
        assert r1.bitmaps[Metric.ACTOR].count() == 2
        assert r1.metrics[Metric.ACTOR].covered == 2

    def test_summary_mentions_all_metrics(self):
        report = CoverageReport.empty(self._report())
        text = report.summary()
        for metric in ALL_METRICS:
            assert metric.title in text

    def test_mcdc_covered_conditions(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        p = b.relational("P", ">", x, b.constant("Z", 0))
        q = b.relational("Q", "<", x, b.constant("T", 10))
        b.outport("Y", b.logic("L", "AND", [p, q]))
        prog = preprocess(b.build())
        points = enumerate_points(prog)
        report = CoverageReport.empty(points)
        base, n = points.mcdc_base[prog.actor_by_path("M_L").index]
        assert n == 2
        report.bitmaps[Metric.MCDC].set(base + 0)  # cond 0 false side
        report.bitmaps[Metric.MCDC].set(base + 1)  # cond 0 true side
        report.bitmaps[Metric.MCDC].set(base + 2)  # cond 1 false side only
        assert report.mcdc_covered_conditions() == 1

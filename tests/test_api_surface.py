"""The documented public API surface stays importable and coherent."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_docstring_example_runs(self):
        """The example in the package docstring must actually work."""
        from repro import ModelBuilder, simulate
        from repro.dtypes import I32

        b = ModelBuilder("Demo")
        x = b.inport("X", dtype=I32)
        acc = b.accumulator("Acc", x, dtype=I32)
        b.outport("Y", acc)
        result = simulate(b.build(), engine="sse", steps=100)
        assert "sse" in result.summary()


class TestSubpackageExports:
    @pytest.mark.parametrize("module", [
        "repro.dtypes", "repro.model", "repro.slx", "repro.schedule",
        "repro.actors", "repro.coverage", "repro.diagnosis",
        "repro.instrument", "repro.codegen", "repro.engines",
        "repro.stimuli", "repro.benchmarks",
    ])
    def test_module_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    @pytest.mark.parametrize("module", [
        "repro.dtypes", "repro.model", "repro.slx", "repro.schedule",
        "repro.actors", "repro.coverage", "repro.diagnosis",
        "repro.instrument", "repro.codegen", "repro.engines",
        "repro.stimuli", "repro.benchmarks", "repro.cli",
    ])
    def test_module_docstrings(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40, module


class TestResultHelpers:
    def test_signal_bits_canonical_nan(self):
        import math

        from repro.dtypes import F32, F64
        from repro.engines.base import signal_bits

        assert signal_bits(math.nan, F64) == 0x7FF8000000000000
        assert signal_bits(math.nan, F32) == 0x7FC00000

    def test_signal_bits_sign_extension(self):
        from repro.dtypes import I32
        from repro.engines.base import signal_bits

        assert signal_bits(-1, I32) == 0xFFFFFFFFFFFFFFFF
        assert signal_bits(1, I32) == 1

    def test_checksum_recurrence(self):
        from repro.engines.base import CHECKSUM_PRIME, checksum_step

        acc = checksum_step(0, 7)
        assert acc == 7
        assert checksum_step(acc, 0) == (7 * CHECKSUM_PRIME) % 2**64

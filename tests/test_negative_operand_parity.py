"""Directed divergence tests: remainder and rounding with negative operands.

The reference semantics are C's: remainder takes the sign of the
dividend (truncating division), rounding is half-away-from-zero, and —
the part the original Python helpers got wrong — libm's ``floor`` /
``ceil`` / ``trunc`` / ``round`` preserve the *sign of a zero result*
(``ceil(-0.5) == -0.0``).  Checksums hash raw IEEE bits, so a ``+0.0``
vs ``-0.0`` disagreement is a real divergence.  Every engine rung must
agree bit for bit on these inputs.
"""

from __future__ import annotations

import math
import struct

import pytest
from conftest import requires_cc
from helpers import assert_results_agree

from repro.dtypes import DType
from repro.engines import simulate
from repro.model.builder import ModelBuilder
from repro.stimuli.generators import SequenceStimulus

PY_ENGINES = ["sse_ac", "sse_rac"]
FLOAT_DTYPES = [DType.F64, DType.F32]

# Negative operands, signed zeros, and exact halves — the values where
# Python's int-returning rounding and %-remainder habits disagree with C.
ROUND_VALUES = [-2.5, -0.5, 0.5, 2.5, -1.5, 1.5, -0.3, 0.3, -0.0, 0.0, -7.75]
MOD_FLOAT_CASES = (
    [-7.5, 7.5, -7.5, 0.3, -0.0, 5.25],
    [2.0, -2.0, -2.0, 0.0, 3.0, -1.5],
)
MOD_INT_CASES = ([-7, 7, -7, 7, 5, -128], [3, -3, -3, 3, 0, -3])


def _compare_engines(model, stim_values, steps, cc_available):
    def stims():
        return {k: SequenceStimulus(v) for k, v in stim_values.items()}

    ref = simulate(model, stims(), engine="sse", steps=steps)
    for engine in PY_ENGINES:
        other = simulate(model, stims(), engine=engine, steps=steps)
        assert_results_agree(ref, other, coverage=False, diagnostics=False)
    if cc_available:
        acc = simulate(model, stims(), engine="accmos", steps=steps)
        assert_results_agree(ref, acc)
    return ref


@pytest.mark.parametrize("dtype", FLOAT_DTYPES, ids=["f64", "f32"])
@pytest.mark.parametrize("op", ["floor", "ceil", "round", "fix"])
def test_rounding_negative_parity(op, dtype, cc_available):
    b = ModelBuilder(f"round_{op}_{dtype.short_name}")
    b.outport("y", b.rounding("r", op, b.inport("u", dtype=dtype)))
    _compare_engines(
        b.build(), {"u": ROUND_VALUES}, len(ROUND_VALUES), cc_available
    )


@pytest.mark.parametrize("dtype", FLOAT_DTYPES, ids=["f64", "f32"])
@pytest.mark.parametrize("interval", [0.1, 0.5, 3.0])
def test_quantizer_negative_parity(interval, dtype, cc_available):
    b = ModelBuilder(f"quant_{dtype.short_name}")
    b.outport("y", b.quantizer("q", b.inport("u", dtype=dtype), interval))
    _compare_engines(
        b.build(), {"u": ROUND_VALUES}, len(ROUND_VALUES), cc_available
    )


@pytest.mark.parametrize("dtype", FLOAT_DTYPES, ids=["f64", "f32"])
def test_mod_float_negative_parity(dtype, cc_available):
    b = ModelBuilder(f"mod_{dtype.short_name}")
    b.outport(
        "y",
        b.mod("m", b.inport("u", dtype=dtype), b.inport("v", dtype=dtype)),
    )
    u, v = MOD_FLOAT_CASES
    _compare_engines(b.build(), {"u": u, "v": v}, len(u), cc_available)


# libm's floor/ceil/trunc pass ±inf and nan straight through; Python's
# int-returning math.floor/ceil/trunc raise instead, which used to crash
# the interpreted reference outright (found by a guided fuzz run feeding
# inf into a Quantizer).
NON_FINITE_VALUES = [math.inf, -math.inf, math.nan, 1e308, -0.0]


@pytest.mark.parametrize("dtype", FLOAT_DTYPES, ids=["f64", "f32"])
@pytest.mark.parametrize("op", ["floor", "ceil", "round", "fix"])
def test_rounding_non_finite_parity(op, dtype, cc_available):
    b = ModelBuilder(f"round_nf_{op}_{dtype.short_name}")
    b.outport("y", b.rounding("r", op, b.inport("u", dtype=dtype)))
    _compare_engines(
        b.build(), {"u": NON_FINITE_VALUES}, len(NON_FINITE_VALUES),
        cc_available,
    )


@pytest.mark.parametrize("dtype", FLOAT_DTYPES, ids=["f64", "f32"])
def test_quantizer_non_finite_parity(dtype, cc_available):
    b = ModelBuilder(f"quant_nf_{dtype.short_name}")
    b.outport("y", b.quantizer("q", b.inport("u", dtype=dtype), 0.5))
    _compare_engines(
        b.build(), {"u": NON_FINITE_VALUES}, len(NON_FINITE_VALUES),
        cc_available,
    )


@pytest.mark.parametrize(
    "dtype",
    [DType.I8, DType.I16, DType.I32, DType.I64],
    ids=lambda d: d.short_name,
)
def test_mod_int_sign_of_dividend(dtype, cc_available):
    b = ModelBuilder(f"mod_{dtype.short_name}")
    b.outport(
        "y",
        b.mod("m", b.inport("u", dtype=dtype), b.inport("v", dtype=dtype)),
    )
    u, v = MOD_INT_CASES
    _compare_engines(b.build(), {"u": u, "v": v}, len(u), cc_available)


class TestHelperSemantics:
    """Unit pins on the helpers themselves (sign of zero is invisible to
    ``==``, so compare raw bits)."""

    @staticmethod
    def _bits(x: float) -> bytes:
        return struct.pack("<d", x)

    def test_ceil_negative_zero(self):
        from repro.actors.math_ops import c_ceil

        assert self._bits(c_ceil(-0.5)) == self._bits(-0.0)
        assert self._bits(c_ceil(0.5)) == self._bits(1.0)

    def test_floor_signed_zero(self):
        from repro.actors.math_ops import c_floor

        assert self._bits(c_floor(-0.0)) == self._bits(-0.0)
        assert self._bits(c_floor(0.3)) == self._bits(0.0)

    def test_round_half_away_and_zero_sign(self):
        from repro.actors.math_ops import c_round

        assert c_round(-2.5) == -3.0
        assert c_round(2.5) == 3.0
        assert self._bits(c_round(-0.3)) == self._bits(-0.0)
        # -0.0 >= 0 in Python and C alike: takes the floor branch.
        assert self._bits(c_round(-0.0)) == self._bits(0.0)

    def test_fix_negative_zero(self):
        from repro.actors.math_ops import c_fix

        assert self._bits(c_fix(-0.5)) == self._bits(-0.0)
        assert c_fix(-1.5) == -1.0
        assert c_fix(1.9) == 1.0

    def test_non_finite_passthrough(self):
        from repro.actors.math_ops import c_ceil, c_fix, c_floor, c_round

        for fn in (c_floor, c_ceil, c_fix, c_round):
            assert fn(math.inf) == math.inf
            assert fn(-math.inf) == -math.inf
            assert math.isnan(fn(math.nan))

    def test_mod_sign_of_dividend(self):
        from repro.dtypes.arith import _trunc_mod

        assert _trunc_mod(-7, 3) == -1
        assert _trunc_mod(7, -3) == 1
        assert _trunc_mod(-7, -3) == -1
        assert math.fmod(-7.5, 2.0) == -1.5

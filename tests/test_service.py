"""The campaign service: lifecycle, byte-identity, fairness, resilience.

Four contracts under test, straight from the service's design:

* **Lifecycle** — submit returns an id before the campaign runs; status
  and the event log advance through queued/running to exactly one
  terminal state; cancel is cooperative, drains in flight work, and
  reports the speculation it discarded.
* **Byte-identity** — the outcome streamed over WebSocket is the same
  canonical byte string :func:`repro.campaign.run_campaign` produces
  for the same spec (``repro campaign --json`` prints it), on zoo
  models, including the replayed stream after a reconnect and the
  folded prefix under cancel.
* **Fairness** — per-tenant quotas with round-robin admission: one
  tenant's backlog cannot starve another tenant's first submission.
* **Resilience** — a client that vanishes mid-stream kills its
  connection, not its campaign, and leaves the shared pool healthy for
  the next submission.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from conftest import requires_cc
from helpers import ZOO
from repro.campaign import run_campaign
from repro.runner.costmodel import CostModelStore, set_default_cost_store
from repro.schedule import preprocess
from repro.service import (
    CampaignServer,
    CampaignService,
    SpecError,
    encode,
    outcome_record,
    parse_spec,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.codec import case_record
from repro.service.wire import ws_client_handshake, ws_read_frame_sync
from repro.slx.generic import model_to_generic

DEADLINE = 90.0  # generous upper bound on any campaign in this file


@pytest.fixture(autouse=True)
def _isolated_cost_store(tmp_path):
    """Never read or pollute the user's persistent cost model."""
    previous = set_default_cost_store(CostModelStore(tmp_path / "cm.json"))
    yield
    set_default_cost_store(previous)


def _wait(predicate, timeout=DEADLINE, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class _Server:
    """A CampaignServer on a background event loop, for blocking tests."""

    def __init__(self, service: CampaignService) -> None:
        self.server = CampaignServer(service)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()
        self._thread.start()
        assert self._started.wait(10), "server failed to start"
        self.client = ServiceClient(self.server.host, self.server.port)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_forever()

    def close(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.close(), self.loop
        )
        future.result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


@pytest.fixture
def server(tmp_path):
    service = CampaignService(
        tenant_quota=1,
        max_concurrent=2,
        cost_store=CostModelStore(tmp_path / "service-cm.json"),
    )
    running = _Server(service)
    yield running
    running.close()


def _spec(model="bench:SPV", **extra):
    spec = {"model": model, "engine": "sse", "steps": 300, "max_cases": 6}
    spec.update(extra)
    return spec


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
class TestSpec:
    def test_minimal_spec_defaults(self):
        spec = parse_spec({"model": "bench:SPV"})
        assert spec.model == "bench:SPV"
        assert spec.tenant == "default"
        assert spec.engine == "accmos"
        assert spec.campaign_kwargs() == {"engine": "accmos"}

    def test_knobs_forwarded(self):
        spec = parse_spec(_spec(workers=2, tenant="t", serve=False))
        kwargs = spec.campaign_kwargs()
        assert kwargs["engine"] == "sse"
        assert kwargs["steps"] == 300
        assert kwargs["workers"] == 2
        assert kwargs["serve"] is False
        assert "tenant" not in kwargs  # service-level, not a runner knob

    @pytest.mark.parametrize(
        "document, message",
        [
            ("nope", "must be a JSON object"),
            ({}, "requires 'model'"),
            ({"model": ""}, "requires 'model'"),
            ({"model": {"name": "X"}}, "missing 'blocks'"),
            ({"model": "bench:SPV", "typo": 1}, "unknown spec key"),
            ({"model": "bench:SPV", "engine": "matlab"}, "unknown engine"),
            ({"model": "bench:SPV", "tenant": ""}, "'tenant'"),
            ({"model": "bench:SPV", "workers": 0}, "workers"),
            ({"model": "bench:SPV", "workers": True}, "must be an integer"),
            ({"model": "bench:SPV", "steps": "many"}, "must be an integer"),
            ({"model": "bench:SPV", "serve": 1}, "must be a boolean"),
            ({"model": "bench:SPV", "mode": "fork"}, "'mode'"),
            ({"model": "bench:SPV", "scheduler": "lifo"}, "'scheduler'"),
            ({"model": "bench:SPV", "timeout_seconds": 0}, "positive"),
        ],
    )
    def test_rejects_bad_documents(self, document, message):
        with pytest.raises(SpecError, match=message):
            parse_spec(document)

    def test_inline_generic_model_loads(self):
        document = model_to_generic(ZOO["int_arith"]()[0])
        spec = parse_spec({"model": document, "engine": "sse"})
        prog = spec.load_program()
        assert prog.model.name == "IntArith"


# ----------------------------------------------------------------------
# submit / stream / cancel lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_submit_stream_complete(self, server):
        client = server.client
        assert client.health()
        campaign_id = client.submit(_spec())

        events = list(client.stream(campaign_id))
        types = [event["type"] for event in events]
        assert types[0] == "started"
        assert types[-1] == "outcome"
        assert set(types[1:-1]) == {"case"}
        # Case events carry the fold's seed order.
        seeds = [event["case"]["seed"] for event in events[1:-1]]
        assert seeds == sorted(seeds)

        final = events[-1]
        assert final["state"] == "done"
        assert final["outcome"]["n_cases"] == len(seeds)

        status = client.status(campaign_id)
        assert status["state"] == "done"
        assert status["cases"] == len(seeds)
        assert status["scheduler_stats"] is not None
        assert "server_pool" in status["service"]
        assert "telemetry" in status["service"]

    def test_events_endpoint_pages_the_log(self, server):
        client = server.client
        campaign_id = client.submit(_spec())
        assert _wait(
            lambda: client.status(campaign_id)["state"] == "done"
        )
        page = client.events(campaign_id)
        assert page["terminal"] is True
        assert page["events"][0]["type"] == "started"
        tail = client.events(campaign_id, cursor=page["next_cursor"] - 1)
        assert tail["events"] == page["events"][-1:]

    def test_unknown_campaign_is_404(self, server):
        with pytest.raises(ServiceError) as excinfo:
            server.client.status("c9999")
        assert excinfo.value.status == 404

    def test_invalid_spec_is_400(self, server):
        with pytest.raises(ServiceError) as excinfo:
            server.client.submit({"model": "bench:SPV", "typo": 1})
        assert excinfo.value.status == 400
        assert "typo" in str(excinfo.value.body)
        with pytest.raises(ServiceError) as excinfo:
            server.client.submit({"model": "bench:NOPE"})
        assert excinfo.value.status == 400

    def test_cancel_running_campaign_drains_and_reports(self, server):
        client = server.client
        campaign_id = client.submit(
            _spec(steps=20_000, max_cases=200, plateau_patience=200)
        )
        # Let it actually start folding before pulling the plug.
        assert _wait(lambda: client.status(campaign_id)["cases"] >= 1)
        status = client.cancel(campaign_id)
        assert status["state"] == "cancelled"
        assert status["cases"] < 200
        assert status["speculated_cases"] >= 0
        # The terminal event is an outcome event carrying the drain.
        final = client.events(campaign_id)["events"][-1]
        assert final["type"] == "outcome"
        assert final["state"] == "cancelled"
        assert final["speculated_cases"] == status["speculated_cases"]
        # Cancel is idempotent once terminal.
        assert client.cancel(campaign_id)["state"] == "cancelled"

    def test_cancel_queued_campaign_never_runs(self, tmp_path):
        service = CampaignService(
            tenant_quota=1,
            max_concurrent=1,
            cost_store=CostModelStore(tmp_path / "cm2.json"),
        )
        try:
            blocker = service.submit(
                _spec(steps=20_000, max_cases=200, plateau_patience=200)
            )
            queued = service.submit(_spec())
            assert queued.state == "queued"
            status = service.cancel(queued.id)
            assert status["state"] == "cancelled"
            assert status["cases"] == 0
            assert status["speculated_cases"] == 0
            service.cancel(blocker.id)
        finally:
            service.close()


# ----------------------------------------------------------------------
# byte-identity with the CLI fold
# ----------------------------------------------------------------------
ZOO_IDENTITY = ["int_arith", "unsigned", "logic_decisions"]


class TestByteIdentity:
    @pytest.mark.parametrize("name", ZOO_IDENTITY)
    def test_streamed_outcome_matches_cli(self, name, server):
        model = ZOO[name]()[0]
        document = model_to_generic(model)
        spec = {
            "model": document, "engine": "sse",
            "steps": 400, "max_cases": 5, "workers": 2,
        }
        campaign_id = server.client.submit(spec)
        frames = list(server.client.stream_raw(campaign_id))
        events = [json.loads(frame.decode("utf-8")) for frame in frames]
        final = events[-1]
        assert final["type"] == "outcome" and final["state"] == "done"

        reference = run_campaign(
            preprocess(model), engine="sse",
            steps=400, max_cases=5, workers=2,
        )
        # The canonical encoding the CLI prints (`repro campaign --json`)
        # must equal the streamed terminal outcome, byte for byte.
        assert (
            frames[-1]
            == encode(
                {
                    "type": "outcome",
                    "state": "done",
                    "outcome": outcome_record(reference),
                    "speculated_cases": final["speculated_cases"],
                }
            ).encode("utf-8")
        )
        # And each streamed case is the canonical per-case record.
        streamed = [e for e in events if e["type"] == "case"]
        assert [e["case"] for e in streamed] == [
            case_record(case) for case in reference.cases
        ]

    def test_reconnect_replay_is_byte_identical(self, server):
        campaign_id = server.client.submit(_spec(workers=2))
        first = list(server.client.stream_raw(campaign_id))
        assert len(first) >= 3
        # A reconnect with cursor=N replays exactly the missed suffix.
        for cursor in (0, 1, len(first) - 1):
            replay = list(server.client.stream_raw(campaign_id, cursor))
            assert replay == first[cursor:]

    def test_cancelled_stream_is_a_prefix_of_the_full_run(self, server):
        """Cancel discards the tail, never corrupts the folded prefix."""
        spec = _spec(steps=15_000, max_cases=40, plateau_patience=40)
        campaign_id = server.client.submit(spec)
        assert _wait(
            lambda: server.client.status(campaign_id)["cases"] >= 2
        )
        server.client.cancel(campaign_id)
        events = list(server.client.stream(campaign_id))
        streamed = [e["case"] for e in events if e["type"] == "case"]
        assert events[-1]["state"] == "cancelled"
        assert 0 < len(streamed) < 40

        reference = run_campaign(
            _bench_prog(),
            engine="sse", steps=15_000, max_cases=40, plateau_patience=40,
        )
        full = [case_record(case) for case in reference.cases]
        assert streamed == full[: len(streamed)]


def _bench_prog():
    from repro.benchmarks import build_benchmark

    return preprocess(build_benchmark("SPV"))


# ----------------------------------------------------------------------
# tenant quotas and fair admission
# ----------------------------------------------------------------------
class TestTenantFairness:
    def test_round_robin_across_tenants(self, tmp_path):
        """A's backlog must not starve B's first submission."""
        service = CampaignService(
            tenant_quota=1,
            max_concurrent=1,
            cost_store=CostModelStore(tmp_path / "cm3.json"),
        )
        slow = _spec(steps=20_000, max_cases=200, plateau_patience=200)
        try:
            a1 = service.submit(dict(slow, tenant="a"))
            assert _wait(lambda: a1.state == "running")
            a2 = service.submit(dict(slow, tenant="a"))
            b1 = service.submit(dict(slow, tenant="b"))
            assert a2.state == "queued" and b1.state == "queued"

            service.cancel(a1.id)
            # Round-robin admission: the slot freed by a1 goes to tenant
            # b, not to a's second submission.
            assert _wait(lambda: b1.state == "running")
            assert a2.state == "queued"

            service.cancel(b1.id)
            assert _wait(lambda: a2.state == "running")
            service.cancel(a2.id)
        finally:
            service.close()

    def test_tenant_quota_caps_concurrency(self, tmp_path):
        """One tenant cannot occupy both global slots; a second tenant
        can run alongside."""
        service = CampaignService(
            tenant_quota=1,
            max_concurrent=2,
            cost_store=CostModelStore(tmp_path / "cm4.json"),
        )
        slow = _spec(steps=20_000, max_cases=200, plateau_patience=200)
        try:
            a1 = service.submit(dict(slow, tenant="a"))
            a2 = service.submit(dict(slow, tenant="a"))
            assert _wait(lambda: a1.state == "running")
            assert a2.state == "queued"  # quota, despite a free slot
            b1 = service.submit(dict(slow, tenant="b"))
            assert _wait(lambda: b1.state == "running")
            assert a2.state == "queued"
            for record in (a1, b1, a2):
                service.cancel(record.id)
        finally:
            service.close()

    def test_rejects_degenerate_limits(self):
        with pytest.raises(ValueError, match="tenant_quota"):
            CampaignService(tenant_quota=0)
        with pytest.raises(ValueError, match="max_concurrent"):
            CampaignService(max_concurrent=0)


# ----------------------------------------------------------------------
# disconnect resilience
# ----------------------------------------------------------------------
class TestDisconnect:
    def test_mid_campaign_disconnect_leaves_service_healthy(self, server):
        client = server.client
        campaign_id = client.submit(
            _spec(steps=20_000, max_cases=200, plateau_patience=200)
        )
        assert _wait(lambda: client.status(campaign_id)["cases"] >= 1)

        # Raw-socket subscriber that vanishes without a close frame.
        path = f"/campaigns/{campaign_id}/stream"
        handshake, _ = ws_client_handshake(client.host, path)
        sock = socket.create_connection(
            (client.host, client.port), timeout=30
        )
        sock.sendall(handshake)
        data = b""
        while b"\r\n\r\n" not in data:
            data += sock.recv(4096)
        buffered = [data.split(b"\r\n\r\n", 1)[1]]

        def read_exactly(n):
            while len(buffered[0]) < n:
                chunk = sock.recv(65536)
                assert chunk, "server closed the stream early"
                buffered[0] += chunk
            out, buffered[0] = buffered[0][:n], buffered[0][n:]
            return out

        ws_read_frame_sync(read_exactly)  # at least one live frame
        sock.close()  # abrupt: no close frame, mid-campaign

        # The campaign is unaffected: still running, cancellable, and
        # its terminal drain is intact.
        status = client.status(campaign_id)
        assert status["state"] == "running"
        assert client.cancel(campaign_id)["state"] == "cancelled"

        # The service (and its shared pool) serves the next campaign.
        follow_up = client.submit(_spec())
        events = list(client.stream(follow_up))
        assert events[-1]["type"] == "outcome"
        assert events[-1]["state"] == "done"
        assert client.status(follow_up)["service"]["server_pool"] is not None

    @requires_cc
    def test_warm_pool_is_shared_across_campaigns(self, server):
        """Two AccMoS campaigns of one model reuse warm servers across
        the campaign boundary — the shared pool's reason to exist."""
        spec = {
            "model": "bench:SPV", "engine": "accmos",
            "steps": 120, "max_cases": 4, "plateau_patience": 4,
            "batch_size": 2, "serve": True, "threads": 1,
        }
        client = server.client
        first = client.submit(spec)
        assert list(client.stream(first))[-1]["state"] == "done"
        second = client.submit(spec)
        assert list(client.stream(second))[-1]["state"] == "done"
        pool = client.status(second)["service"]["server_pool"]
        assert pool["spawns"] >= 1
        assert pool["reuses"] >= 1, pool

"""AccMoS engine option matrix: budgets, dt, monitors, disabled features."""

from __future__ import annotations

import pytest

from repro import SimulationOptions, simulate
from repro.dtypes import F64, I32
from repro.model import ModelBuilder
from repro.schedule import preprocess
from repro.stimuli import ConstantStimulus, UniformRandomStimulus

from conftest import requires_cc
from helpers import assert_results_agree

pytestmark = requires_cc


def _prog(dt: float = 1.0):
    b = ModelBuilder("Opt")
    x = b.inport("X", dtype=F64)
    integ = b.discrete_integrator("I", x, gain=2.0)
    scaled = b.gain("G", integ, 0.5)
    b.block("Scope", "Watch", [scaled], n_outputs=0)
    b.outport("Y", scaled)
    return preprocess(b.build(), dt=dt)


class TestOptionMatrix:
    def test_time_budget_stops_generated_code(self):
        prog = _prog()
        options = SimulationOptions(steps=2_000_000_000, time_budget=0.2)
        result = simulate(prog, {"X": ConstantStimulus(0.001)},
                          engine="accmos", options=options)
        assert 0 < result.steps_run < 2_000_000_000
        assert result.wall_time < 2.0

    def test_dt_affects_integration_identically(self):
        for dt in (1.0, 0.25, 0.01):
            prog = _prog(dt=dt)
            stim = lambda: {"X": UniformRandomStimulus(5, 0.0, 1.0)}  # noqa: E731
            sse = simulate(prog, stim(), engine="sse", steps=300)
            acc = simulate(prog, stim(), engine="accmos", steps=300)
            assert_results_agree(sse, acc)

    def test_scope_feeder_monitored_in_both_engines(self):
        prog = _prog()
        options = SimulationOptions(steps=20, monitor_limit=20)
        sse = simulate(prog, {"X": ConstantStimulus(1.0)}, engine="sse",
                       options=options)
        acc = simulate(prog, {"X": ConstantStimulus(1.0)}, engine="accmos",
                       options=options)
        assert "Opt_G" in sse.monitored  # the Scope's feeder
        assert sse.monitored["Opt_G"] == acc.monitored["Opt_G"]

    def test_coverage_and_diagnostics_both_disabled(self):
        prog = _prog()
        options = SimulationOptions(steps=50, coverage=False, diagnostics=False)
        result = simulate(prog, {"X": ConstantStimulus(1.0)}, engine="accmos",
                          options=options)
        assert result.coverage is None
        assert result.diagnostics == []
        reference = simulate(prog, {"X": ConstantStimulus(1.0)}, engine="sse",
                             options=options)
        assert result.checksums == reference.checksums

    def test_checksum_disabled_in_generated_code(self):
        prog = _prog()
        options = SimulationOptions(steps=10, checksum=False)
        result = simulate(prog, {"X": ConstantStimulus(1.0)}, engine="accmos",
                          options=options)
        assert result.checksums == {}

    def test_monitor_limit_zero_like_small(self):
        prog = _prog()
        options = SimulationOptions(steps=50, monitor_limit=1)
        result = simulate(prog, {"X": ConstantStimulus(1.0)}, engine="accmos",
                          options=options)
        assert all(len(v) == 1 for v in result.monitored.values())

    def test_model_without_outports(self):
        b = ModelBuilder("NoOut")
        x = b.inport("X", dtype=I32)
        b.terminator("T", b.gain("G", x, 2))
        prog = preprocess(b.build())
        sse = simulate(prog, {"X": ConstantStimulus(3)}, engine="sse", steps=10)
        acc = simulate(prog, {"X": ConstantStimulus(3)}, engine="accmos", steps=10)
        assert sse.outputs == acc.outputs == {}
        assert sse.coverage.bitmaps == acc.coverage.bitmaps

    def test_model_without_inports(self):
        b = ModelBuilder("NoIn")
        c = b.block("Counter", "Cnt", params={"limit": 5})
        b.outport("Y", c)
        prog = preprocess(b.build())
        sse = simulate(prog, {}, engine="sse", steps=12)
        acc = simulate(prog, {}, engine="accmos", steps=12)
        assert_results_agree(sse, acc)
        assert sse.outputs["Y"] == 1  # 11 % 5 after holding the output phase

"""Persistent --serve servers: streaming submission, incremental parsing.

Pins the PR's core invariant: the warm-server path is a pure throughput
lever — byte-identical results to the SSE reference and the spawn-per-
batch path across the zoo and every stimulus kind, surviving crashes
mid-stream (restart + resubmit), degrading to spawn-per-batch when the
server keeps dying, and bounded by the pool's idle-TTL/LRU lifecycle.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import SimulationOptions, simulate, telemetry
from repro.codegen.driver import (
    ParseTables,
    ServerError,
    SimulationServer,
    split_case_frames,
)
from repro.dtypes import F64, I32
from repro.engines.accmos import ModelServer, compile_model
from repro.model.builder import ModelBuilder
from repro.runner.cache import ArtifactCache
from repro.runner.costmodel import FLAP_PENALTY, CostModelStore
from repro.runner.servers import (
    FLAP_RESTART_THRESHOLD,
    ServerPool,
    merge_server_stats,
)
from repro.schedule import preprocess
from repro.stimuli import (
    ConstantStimulus,
    IntRandomStimulus,
    PulseStimulus,
    RampStimulus,
    SequenceStimulus,
    SineStimulus,
    StepStimulus,
    UniformRandomStimulus,
)

from conftest import requires_cc
from helpers import ZOO, assert_results_agree

STEPS = 200


@pytest.fixture(scope="module")
def zoo_programs():
    programs = {}
    for name, factory in ZOO.items():
        model, stimuli = factory()
        programs[name] = (preprocess(model), stimuli)
    return programs


# ----------------------------------------------------------------------
# three-way byte identity: SSE vs run_batch vs server-mode stream
# ----------------------------------------------------------------------
@requires_cc
@pytest.mark.parametrize("name", sorted(ZOO))
def test_stream_matches_sse_and_batch(zoo_programs, name):
    prog, stimuli = zoo_programs[name]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False)
    sse = simulate(prog, stimuli(), engine="sse", options=opts)
    batch = model.run_batch([(stimuli(), None) for _ in range(3)])
    stream = list(model.run_stream([(stimuli(), None) for _ in range(3)]))
    assert len(stream) == 3
    assert_results_agree(sse, stream[0])
    for via_batch, via_stream in zip(batch, stream):
        assert_results_agree(via_batch, via_stream)


def _kinds_model():
    b = ModelBuilder("Kinds")
    x = b.inport("X", dtype=F64)
    n = b.inport("N", dtype=I32)
    total = b.sum_("Total", [x, b.dtc("NF", n, F64)], dtype=F64)
    b.outport("Out", total)
    return preprocess(b.build())


KIND_CASES = {
    "constant": lambda: {
        "X": ConstantStimulus(2.5), "N": ConstantStimulus(3),
    },
    "sequence": lambda: {
        "X": SequenceStimulus([0.5, -1.25, 3.0]),
        "N": SequenceStimulus([7, 0, -2, 9]),
    },
    "ramp": lambda: {
        "X": RampStimulus(start=-1.0, slope=0.125),
        "N": ConstantStimulus(1),
    },
    "sine": lambda: {
        "X": SineStimulus(amplitude=2.0, period_steps=37, phase=0.5, bias=0.25),
        "N": ConstantStimulus(0),
    },
    "step": lambda: {
        "X": StepStimulus(at=40, before=-0.5, after=1.5),
        "N": StepStimulus(at=90, before=0, after=4),
    },
    "pulse": lambda: {
        "X": PulseStimulus(period=11, duty=4, high=1.25, low=-0.25),
        "N": PulseStimulus(period=7, duty=2, high=3, low=1),
    },
    "uniform_random": lambda: {
        "X": UniformRandomStimulus(23, -2.0, 2.0), "N": ConstantStimulus(2),
    },
    "int_random": lambda: {
        "X": ConstantStimulus(0.5), "N": IntRandomStimulus(31, -100, 100),
    },
}


@requires_cc
@pytest.mark.parametrize("kind", sorted(KIND_CASES))
def test_stream_identity_every_stimulus_kind(kind):
    """Each descriptor kind round-trips the serve-mode wire protocol."""
    prog = _kinds_model()
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False)
    make = KIND_CASES[kind]
    sse = simulate(prog, make(), engine="sse", options=opts)
    (batch,) = model.run_batch([(make(), None)])
    (stream,) = list(model.run_stream([(make(), None)]))
    assert_results_agree(sse, batch)
    assert_results_agree(sse, stream)


# ----------------------------------------------------------------------
# crash recovery and the fallback ladder
# ----------------------------------------------------------------------
@requires_cc
def test_crash_restarts_and_matches(zoo_programs):
    """Killing the server process externally loses nothing: the handle
    respawns, unfinished cases are resubmitted, and every result is
    byte-identical to the spawn-per-batch path.  The kill lands before
    the first submission so exactly one restart is guaranteed."""
    prog, stimuli = zoo_programs["stateful"]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False)
    cases = [(stimuli(), None) for _ in range(5)]
    batch = model.run_batch([(stimuli(), None) for _ in range(5)])

    server = model.serve()
    try:
        os.kill(server.pid, 9)
        got = list(model.run_stream(cases, server=server))
    finally:
        server.close()
    assert len(got) == 5
    assert server.restarts == 1
    for via_batch, via_stream in zip(batch, got):
        assert_results_agree(via_batch, via_stream)


@requires_cc
def test_crash_mid_stream_matches(zoo_programs):
    """An external kill *mid-stream* also preserves identity.  Whether a
    restart is needed depends on how many frames were already buffered
    when the kill landed (at most one restart either way)."""
    prog, stimuli = zoo_programs["stateful"]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False)
    cases = [(stimuli(), None) for _ in range(5)]
    batch = model.run_batch([(stimuli(), None) for _ in range(5)])

    server = model.serve()
    try:
        it = model.run_stream(cases, server=server)
        first = next(it)
        os.kill(server.pid, 9)
        rest = list(it)
    finally:
        server.close()
    got = [first] + rest
    assert len(got) == 5
    assert server.restarts <= 1
    for via_batch, via_stream in zip(batch, got):
        assert_results_agree(via_batch, via_stream)


@requires_cc
def test_double_crash_falls_back_to_batch(zoo_programs, monkeypatch):
    """When even the restart fails, the stream drops a rung on the
    ladder (server -> spawn-per-batch) and still yields identical
    results for every case."""
    prog, stimuli = zoo_programs["guarded"]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False)
    batch = model.run_batch([(stimuli(), None) for _ in range(4)])

    monkeypatch.setattr(
        ModelServer, "restart",
        lambda self: (_ for _ in ()).throw(RuntimeError("no respawn")),
    )
    server = model.serve()
    try:
        os.kill(server.pid, 9)
        got = list(model.run_stream([(stimuli(), None) for _ in range(4)],
                                    server=server))
    finally:
        server.kill()
    assert len(got) == 4
    for via_batch, via_stream in zip(batch, got):
        assert_results_agree(via_batch, via_stream)


@requires_cc
def test_server_error_on_dead_process(zoo_programs):
    prog, stimuli = zoo_programs["int_arith"]
    opts = SimulationOptions(steps=STEPS)
    model = compile_model(prog, opts, cache=False)
    server = SimulationServer(model.compiled)
    assert server.alive
    os.kill(server.pid, 9)
    with pytest.raises(ServerError):
        # The record may or may not make it into the dying pipe; the
        # frame read definitely cannot complete.
        from repro.codegen.descriptor import encode_case
        from repro.codegen.descriptor import descriptors_for

        record = encode_case(
            descriptors_for(prog, stimuli()), steps=STEPS, deadline=None
        )
        server.submit(record)
        server.read_frame(timeout=5.0)
    server.kill()
    assert not server.alive


@requires_cc
def test_frame_desync_raises(zoo_programs):
    """A stream whose indices stop matching is killed, not trusted."""
    prog, stimuli = zoo_programs["int_arith"]
    opts = SimulationOptions(steps=STEPS)
    model = compile_model(prog, opts, cache=False)
    server = SimulationServer(model.compiled)
    try:
        server.completed = 7  # simulate lost frames
        from repro.codegen.descriptor import descriptors_for, encode_case

        server.submit(encode_case(
            descriptors_for(prog, stimuli()), steps=STEPS, deadline=None
        ))
        with pytest.raises(ServerError, match="desync"):
            server.read_frame(timeout=10.0)
    finally:
        server.kill()


# ----------------------------------------------------------------------
# warm-server pool lifecycle
# ----------------------------------------------------------------------
@requires_cc
def test_pool_reuses_warm_server(zoo_programs):
    prog, stimuli = zoo_programs["int_arith"]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False)
    with ServerPool(max_servers=2) as pool:
        first = pool.run_batch(model, [(stimuli(), None) for _ in range(2)])
        second = pool.run_batch(model, [(stimuli(), None) for _ in range(2)])
        stats = pool.stats()
    assert stats["spawns"] == 1
    assert stats["reuses"] == 1
    batch = model.run_batch([(stimuli(), None) for _ in range(2)])
    for via_batch, via_pool in zip(batch, first):
        assert_results_agree(via_batch, via_pool)
    for via_batch, via_pool in zip(batch, second):
        assert_results_agree(via_batch, via_pool)


@requires_cc
def test_pool_lru_bound_retires_oldest(zoo_programs):
    prog_a, stim_a = zoo_programs["int_arith"]
    prog_b, stim_b = zoo_programs["unsigned"]
    opts = SimulationOptions(steps=STEPS)
    model_a = compile_model(prog_a, opts, cache=False)
    model_b = compile_model(prog_b, opts, cache=False)
    with ServerPool(max_servers=1) as pool:
        pool.run_batch(model_a, [(stim_a(), None)])
        assert pool.active == 1
        pool.run_batch(model_b, [(stim_b(), None)])
        assert pool.active == 1  # a's server was evicted, LRU-first
        stats = pool.stats()
        assert stats["retired_lru"] == 1
        # b is warm, a needs a respawn
        pool.run_batch(model_b, [(stim_b(), None)])
        pool.run_batch(model_a, [(stim_a(), None)])
        stats = pool.stats()
    assert stats["spawns"] == 3
    assert stats["reuses"] == 1


@requires_cc
def test_pool_idle_ttl_retires(zoo_programs):
    prog, stimuli = zoo_programs["int_arith"]
    opts = SimulationOptions(steps=STEPS)
    model = compile_model(prog, opts, cache=False)
    now = [0.0]
    pool = ServerPool(max_servers=4, idle_ttl_seconds=10.0,
                      _clock=lambda: now[0])
    try:
        pool.run_batch(model, [(stimuli(), None)])
        assert pool.active == 1
        now[0] = 11.0  # past the TTL: the sweep on next acquire retires it
        pool.run_batch(model, [(stimuli(), None)])
        stats = pool.stats()
        assert stats["retired_idle"] == 1
        assert stats["spawns"] == 2
        assert stats["reuses"] == 0
    finally:
        pool.close()


@requires_cc
def test_pool_retires_dead_server_and_respawns(zoo_programs):
    prog, stimuli = zoo_programs["int_arith"]
    opts = SimulationOptions(steps=STEPS)
    model = compile_model(prog, opts, cache=False)
    with ServerPool() as pool:
        handle = pool.acquire(model)
        pid = handle.pid
        pool.release(model, handle)
        os.kill(pid, 9)
        time.sleep(0.05)  # let the process die
        again = pool.acquire(model)
        assert again.pid != pid
        assert again.alive
        pool.release(model, again)
        stats = pool.stats()
    assert stats["retired_error"] == 1
    assert stats["spawns"] == 2


def test_merge_server_stats():
    assert merge_server_stats(None, None) is None
    acc = merge_server_stats(None, {"spawns": 2, "reuses": 1})
    acc = merge_server_stats(acc, {"spawns": 1, "restarts": 3})
    assert acc["spawns"] == 3
    assert acc["reuses"] == 1
    assert acc["restarts"] == 3


# ----------------------------------------------------------------------
# flap detection: restart counters feed cost admission
# ----------------------------------------------------------------------
class TestFlapDetection:
    """Counter-driven: note_restarts is the same entry point run_batch
    calls after a stream restarts its server, so these tests exercise
    the full admission-feedback path without needing a compiler."""

    def test_below_threshold_no_penalty(self):
        store = CostModelStore(None)
        with ServerPool(cost_store=store, flap_restart_threshold=3) as pool:
            assert pool.note_restarts("art", 2, cost_key="k") is False
            assert pool.restart_count("art") == 2
            assert store.model("k").penalty == 1.0
            assert store.generation == 0
            assert pool.stats()["flapped_artifacts"] == 0

    def test_threshold_crossing_penalizes_once(self):
        store = CostModelStore(None)
        baseline = store.predict("k", 10_000, 10)
        with ServerPool(cost_store=store, flap_restart_threshold=3) as pool:
            assert pool.note_restarts("art", 1, cost_key="k") is False
            # Restarts accumulate across streams; the third one trips it.
            assert pool.note_restarts("art", 2, cost_key="k") is True
            assert pool.restart_count("art") == 3
            assert store.model("k").penalty == FLAP_PENALTY
            assert store.predict("k", 10_000, 10) == pytest.approx(
                baseline * FLAP_PENALTY
            )
            assert store.generation == 1
            assert pool.stats()["flapped_artifacts"] == 1
            # Fires once per artifact: more flapping neither re-counts
            # nor multiplies the penalty forever.
            assert pool.note_restarts("art", 5, cost_key="k") is False
            assert pool.restart_count("art") == 8
            assert store.model("k").penalty == FLAP_PENALTY
            assert store.generation == 1
            assert pool.stats()["flapped_artifacts"] == 1

    def test_zero_restarts_never_counted(self):
        with ServerPool() as pool:
            assert pool.note_restarts("art", 0, cost_key="k") is False
            assert pool.note_restarts("art", -1, cost_key="k") is False
            assert pool.restart_count("art") == 0
            assert pool.artifact_stats() == {}

    def test_custom_penalty_and_threshold(self):
        store = CostModelStore(None)
        with ServerPool(
            cost_store=store, flap_restart_threshold=1, flap_penalty=16.0
        ) as pool:
            assert pool.note_restarts("art", 1, cost_key="k") is True
            assert store.model("k").penalty == 16.0

    def test_flap_without_store_or_key_still_detected(self):
        """Detection is independent of the demotion plumbing: a pool
        without a cost store (or a caller without a key) still counts."""
        with ServerPool(flap_restart_threshold=2) as pool:
            assert pool.note_restarts("art", 2, cost_key=None) is True
            assert pool.stats()["flapped_artifacts"] == 1
        store = CostModelStore(None)
        with ServerPool(cost_store=store, flap_restart_threshold=2) as pool:
            assert pool.note_restarts("art", 2, cost_key=None) is True
            assert store.generation == 0  # no key, no demotion

    def test_per_artifact_isolation(self):
        store = CostModelStore(None)
        with ServerPool(cost_store=store, flap_restart_threshold=3) as pool:
            pool.note_restarts("a", 2, cost_key="ka")
            pool.note_restarts("b", 2, cost_key="kb")
            assert pool.stats()["flapped_artifacts"] == 0
            assert pool.note_restarts("a", 1, cost_key="ka") is True
            assert store.model("ka").penalty == FLAP_PENALTY
            assert store.model("kb").penalty == 1.0
            stats = pool.artifact_stats()
            assert stats["a"]["restarts"] == 3
            assert stats["b"]["restarts"] == 2

    def test_default_threshold_sane(self):
        assert FLAP_RESTART_THRESHOLD >= 2
        with pytest.raises(ValueError):
            ServerPool(flap_restart_threshold=0)


@requires_cc
def test_pool_artifact_counters_track_reuse(zoo_programs):
    prog, stimuli = zoo_programs["int_arith"]
    opts = SimulationOptions(steps=STEPS)
    model = compile_model(prog, opts, cache=False)
    with ServerPool(max_servers=2) as pool:
        pool.run_batch(model, [(stimuli(), None)])
        pool.run_batch(model, [(stimuli(), None)])
        key = ServerPool.artifact_key(model)
        stats = pool.artifact_stats()
    assert stats[key] == {"spawns": 1, "reuses": 1, "restarts": 0}


# ----------------------------------------------------------------------
# campaign: spawn bound + identity
# ----------------------------------------------------------------------
@requires_cc
def test_campaign_server_mode_spawn_bound(zoo_programs, tmp_path):
    """Cold-cache N-case single-artifact campaign in server mode: exactly
    one compiler invocation, at most ``workers`` process spawns, and a
    byte-identical outcome to serial non-server execution."""
    from repro.campaign import run_campaign

    prog, _ = zoo_programs["guarded"]
    workers = 2
    common = dict(steps=STEPS, max_cases=12, plateau_patience=12)
    serial = run_campaign(prog, workers=1, batch_size=1, cache=False,
                          serve=False, **common)
    cache = ArtifactCache(tmp_path / "cache")
    served = run_campaign(prog, workers=workers, batch_size=3, cache=cache,
                          serve=True, **common)

    assert cache.stats().misses == 1  # exactly one gcc for the campaign
    assert served.server_stats is not None
    assert 1 <= served.server_stats["spawns"] <= workers
    assert served.server_stats["restarts"] == 0

    assert [c.seed for c in served.cases] == [c.seed for c in serial.cases]
    for a, b in zip(serial.cases, served.cases):
        assert (a.steps_run, a.new_points, a.n_diagnostics,
                a.new_points_by_metric) == (
            b.steps_run, b.new_points, b.n_diagnostics,
            b.new_points_by_metric)
    assert served.merged.bitmaps == serial.merged.bitmaps
    assert [(str(e), s) for e, s in served.diagnostics] == [
        (str(e), s) for e, s in serial.diagnostics
    ]
    assert served.saturated == serial.saturated


@requires_cc
def test_campaign_no_serve_has_no_server_stats(zoo_programs):
    from repro.campaign import run_campaign

    prog, _ = zoo_programs["int_arith"]
    outcome = run_campaign(prog, steps=STEPS, max_cases=2,
                           plateau_patience=2, batch_size=2,
                           cache=False, serve=False)
    assert outcome.server_stats is None


def test_cli_serve_flag():
    from repro.cli import build_parser

    parser = build_parser()
    assert parser.parse_args(["campaign", "m.xml"]).serve is True
    assert parser.parse_args(["campaign", "m.xml", "--no-serve"]).serve is False


# ----------------------------------------------------------------------
# parse satellites
# ----------------------------------------------------------------------
def test_split_case_frames_yields_line_lists():
    stdout = (
        "case 0\nsteps_run 10\nchecksum Out 5\n"
        "case 1\nsteps_run 20\n"
    )
    frames = split_case_frames(stdout)
    assert frames == [
        ["steps_run 10", "checksum Out 5"],
        ["steps_run 20"],
    ]


@requires_cc
def test_parse_result_accepts_line_iterable(zoo_programs):
    """String stdout and its line list parse to the same result; hoisted
    ParseTables change nothing."""
    from repro.codegen.driver import parse_result

    prog, stimuli = zoo_programs["int_arith"]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False)
    from repro.codegen.descriptor import descriptors_for, encode_case

    payload = encode_case(
        descriptors_for(prog, stimuli()), steps=STEPS, deadline=None
    )
    stdout = model.compiled.execute(input_text=payload)
    frame = split_case_frames(stdout)[0]
    from_str = parse_result(
        "\n".join(frame), prog, model.plan, model.layout, opts
    )
    tables = ParseTables.for_layout(model.layout)
    from_lines = parse_result(
        frame, prog, model.plan, model.layout, opts, tables=tables
    )
    assert_results_agree(from_str, from_lines)


@requires_cc
def test_execute_records_stdout_bytes(zoo_programs):
    prog, stimuli = zoo_programs["int_arith"]
    opts = SimulationOptions(steps=STEPS)
    session = telemetry.enable()
    try:
        model = compile_model(prog, opts, cache=False)
        model.run(stimuli())
    finally:
        telemetry.disable()
    snap = session.metrics.snapshot()
    hist = snap["histograms"]["engine.accmos.stdout_bytes"]
    assert hist["count"] == 1
    assert hist["sum"] > 0

"""Artifact-cache correctness: keys, hits, atomicity, eviction."""

from __future__ import annotations

import os
import threading

import pytest

from repro.codegen import generate_c_program
from repro.codegen.driver import CFLAGS, compile_c_program, find_c_compiler
from repro.dtypes import I32
from repro.engines.base import SimulationOptions
from repro.instrument import build_plan
from repro.model import ModelBuilder
from repro.runner import cache as cache_mod
from repro.runner.cache import ArtifactCache, cache_key
from repro.schedule import preprocess
from repro.stimuli import default_stimuli

from conftest import requires_cc


def _canonical(stdout: str) -> str:
    """Protocol text minus the run-varying self-timing line."""
    return "\n".join(
        line for line in stdout.splitlines()
        if not line.startswith("sim_seconds")
    )


def _generated(seed=1, steps=40):
    b = ModelBuilder("CacheDemo")
    x = b.inport("X", dtype=I32)
    acc = b.accumulator("Acc", x, dtype=I32)
    b.outport("Y", acc)
    prog = preprocess(b.build())
    options = SimulationOptions(steps=steps)
    plan = build_plan(prog)
    source, layout = generate_c_program(
        prog, plan, default_stimuli(prog, seed=seed), options
    )
    return source, layout


class TestCacheKey:
    def _fake_compiler(self, name, banner):
        path = f"/nonexistent/{name}"
        resolved = str(os.path.realpath(path))
        cache_mod._compiler_versions[resolved] = f"{resolved} {banner}"
        return path

    def test_deterministic(self):
        cc = self._fake_compiler("gcc-a", "gcc 13.2.0")
        assert cache_key("int main(){}", cc, CFLAGS) == cache_key(
            "int main(){}", cc, CFLAGS
        )

    def test_one_byte_of_source_changes_key(self):
        cc = self._fake_compiler("gcc-a", "gcc 13.2.0")
        assert cache_key("int main(){return 0;}", cc, CFLAGS) != cache_key(
            "int main(){return 1;}", cc, CFLAGS
        )

    def test_cflags_change_key(self):
        cc = self._fake_compiler("gcc-a", "gcc 13.2.0")
        assert cache_key("int main(){}", cc, ["-O3"]) != cache_key(
            "int main(){}", cc, ["-O0"]
        )

    def test_compiler_version_changes_key(self):
        old = self._fake_compiler("gcc-old", "gcc 12.1.0")
        new = self._fake_compiler("gcc-new", "gcc 13.2.0")
        assert cache_key("int main(){}", old, CFLAGS) != cache_key(
            "int main(){}", new, CFLAGS
        )


@requires_cc
class TestCacheCompile:
    def test_miss_then_hit_returns_working_binary(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        source, layout = _generated()

        first = compile_c_program(source, layout, cache=cache)
        assert not first.cache_hit
        second = compile_c_program(source, layout, cache=cache)
        assert second.cache_hit
        stats = cache.stats()
        assert (stats.misses, stats.hits, stats.entries) == (1, 1, 1)
        assert stats.bytes > 0
        assert _canonical(second.execute()) == _canonical(first.execute())

    def test_changed_source_misses(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        source, layout = _generated()
        compile_c_program(source, layout, cache=cache)
        other, _ = _generated(seed=2)
        assert other != source
        compiled = compile_c_program(other, layout, cache=cache)
        assert not compiled.cache_hit
        assert cache.stats().entries == 2

    def test_explicit_workdir_bypasses_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        source, layout = _generated()
        compiled = compile_c_program(
            source, layout, workdir=tmp_path / "wd", cache=cache
        )
        assert not compiled.cache_hit
        assert (tmp_path / "wd" / "simulation").exists()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)

    def test_concurrent_same_key_leaves_one_valid_artifact(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        source, layout = _generated()
        barrier = threading.Barrier(2)
        outputs, errors = [], []

        def compete():
            try:
                barrier.wait()
                compiled = compile_c_program(source, layout, cache=cache)
                outputs.append(_canonical(compiled.execute()))
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=compete) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(outputs) == 2 and outputs[0] == outputs[1]
        assert cache.stats().entries == 1
        # No stage-* debris left behind by the losing writer.
        assert not [p for p in cache.root.iterdir() if p.name.startswith("stage-")]


class TestMultiArtifact:
    """One cache entry can hold both compiled forms of one source: the
    executable and the ``-shared`` object, under one key."""

    KEY = "dd" + "3" * 62

    def _pair(self, tmp_path, tag, src=10, binary=1000, shared=500):
        d = tmp_path / f"pair-{tag}"
        d.mkdir()
        (d / "src.c").write_bytes(b"s" * src)
        (d / "bin").write_bytes(b"b" * binary)
        (d / "so").write_bytes(b"l" * shared)
        return d / "src.c", d / "bin", d / "so"

    def test_store_pair_and_lookup_by_names(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        src, binary, shared = self._pair(tmp_path, "a")
        entry = cache.store(self.KEY, src, binary, shared_path=shared)
        assert entry.binary is not None and entry.binary.is_file()
        assert entry.shared is not None and entry.shared.is_file()
        assert entry.binary.parent == entry.shared.parent
        # Lookup by either artifact (or both) hits the same entry.
        assert cache.lookup(self.KEY) is not None
        assert cache.lookup(self.KEY, names=(cache_mod.SHARED_NAME,)) is not None
        hit = cache.lookup(
            self.KEY, names=(cache_mod.BINARY_NAME, cache_mod.SHARED_NAME)
        )
        assert hit is not None and hit.binary and hit.shared

    def test_lookup_misses_on_absent_artifact(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        src, binary, _ = self._pair(tmp_path, "a")
        cache.store(self.KEY, src, binary)  # executable only
        assert cache.lookup(self.KEY) is not None
        assert cache.lookup(self.KEY, names=(cache_mod.SHARED_NAME,)) is None

    def test_merge_adds_second_artifact_to_existing_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        src, binary, _ = self._pair(tmp_path, "a")
        first = cache.store(self.KEY, src, binary)
        assert first.shared is None
        src2, _, shared2 = self._pair(tmp_path, "b")
        merged = cache.store(self.KEY, src2, shared_path=shared2)
        assert merged.binary is not None and merged.binary.is_file()
        assert merged.shared is not None and merged.shared.is_file()
        assert cache.stats().entries == 1
        # No stage debris from the merging writer.
        assert not [
            p for p in cache.root.iterdir() if p.name.startswith("stage-")
        ]

    def test_stats_count_both_artifacts_bytes(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        src, binary, shared = self._pair(
            tmp_path, "a", src=10, binary=1000, shared=500
        )
        cache.store(self.KEY, src, binary, shared_path=shared)
        assert cache.stats().bytes == 10 + 1000 + 500

    def test_eviction_removes_the_whole_pair(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache", max_bytes=4000)
        src, binary, shared = self._pair(tmp_path, "a")
        old = cache.store("aa" + "0" * 62, src, binary, shared_path=shared)
        old_dir = old.binary.parent
        os.utime(old_dir, (1_000, 1_000))
        src, binary, shared = self._pair(tmp_path, "b")
        cache.store("bb" + "1" * 62, src, binary, shared_path=shared)
        src, binary, shared = self._pair(tmp_path, "c")
        cache.store("cc" + "2" * 62, src, binary, shared_path=shared)
        stats = cache.stats()
        assert stats.evictions >= 1
        assert stats.bytes <= 4000
        # Entries are evicted whole: neither artifact survives.
        assert not old_dir.exists()

    def test_concurrent_pair_writers_leave_one_valid_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        barrier = threading.Barrier(2)
        errors = []

        def compete(tag):
            try:
                src, binary, shared = self._pair(tmp_path, tag)
                barrier.wait()
                cache.store(self.KEY, src, binary, shared_path=shared)
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=compete, args=(t,)) for t in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        entry = cache.lookup(
            self.KEY, names=(cache_mod.BINARY_NAME, cache_mod.SHARED_NAME)
        )
        assert entry is not None
        assert entry.binary.read_bytes() == b"b" * 1000
        assert entry.shared.read_bytes() == b"l" * 500
        assert cache.stats().entries == 1
        assert not [
            p for p in cache.root.iterdir() if p.name.startswith("stage-")
        ]


class TestEvictionAndAdmin:
    def _seed_entry(self, tmp_path, cache, key, mtime, size=1000):
        src = tmp_path / f"{key}.c"
        binary = tmp_path / key
        src.write_bytes(b"s" * 10)
        binary.write_bytes(b"b" * size)
        entry = cache.store(key, src, binary)
        entry_dir = entry.binary.parent
        os.utime(entry_dir, (mtime, mtime))
        return entry_dir

    def test_lru_eviction_respects_bound(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache", max_bytes=2500)
        old = self._seed_entry(tmp_path, cache, "aa" + "0" * 62, mtime=1_000)
        young = self._seed_entry(tmp_path, cache, "bb" + "1" * 62, mtime=2_000)
        # Third entry pushes the total over 2500 bytes: the oldest goes.
        self._seed_entry(tmp_path, cache, "cc" + "2" * 62, mtime=3_000)
        stats = cache.stats()
        assert stats.evictions >= 1
        assert stats.bytes <= 2500
        assert not old.exists()
        assert young.exists()

    def test_lookup_bumps_lru_clock(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache", max_bytes=2500)
        key_a = "aa" + "0" * 62
        a = self._seed_entry(tmp_path, cache, key_a, mtime=1_000)
        b = self._seed_entry(tmp_path, cache, "bb" + "1" * 62, mtime=2_000)
        assert cache.lookup(key_a) is not None  # bumps a's mtime to "now"
        self._seed_entry(tmp_path, cache, "cc" + "2" * 62, mtime=3_000)
        assert a.exists()  # recently used: survived
        assert not b.exists()

    def test_clear_removes_everything(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        self._seed_entry(tmp_path, cache, "aa" + "0" * 62, mtime=1_000)
        self._seed_entry(tmp_path, cache, "bb" + "1" * 62, mtime=2_000)
        assert cache.clear() == 2
        stats = cache.stats()
        assert (stats.entries, stats.bytes) == (0, 0)
        assert cache.lookup("aa" + "0" * 62) is None

    def test_rejects_nonpositive_bound(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ArtifactCache(tmp_path / "cache", max_bytes=0)


class TestDefaultCache:
    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv(cache_mod.CACHE_DISABLE_ENV, "1")
        monkeypatch.setattr(cache_mod, "_default_cache", None)
        monkeypatch.setattr(cache_mod, "_default_resolved", False)
        assert cache_mod.default_cache() is None

    def test_env_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.delenv(cache_mod.CACHE_DISABLE_ENV, raising=False)
        monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path / "alt"))
        monkeypatch.setattr(cache_mod, "_default_cache", None)
        monkeypatch.setattr(cache_mod, "_default_resolved", False)
        cache = cache_mod.default_cache()
        assert cache is not None and cache.root == tmp_path / "alt"

    def test_set_default_returns_previous(self, tmp_path):
        alt = ArtifactCache(tmp_path / "alt")
        previous = cache_mod.set_default_cache(alt)
        try:
            assert cache_mod.default_cache() is alt
        finally:
            cache_mod.set_default_cache(previous)

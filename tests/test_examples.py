"""The example scripts stay runnable (the quickest ones run end to end;
the long-running ones are compiled and their model builders exercised)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from conftest import requires_cc

EXAMPLES = Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize("name", [
    "quickstart", "overflow_detection", "ev_charging_diagnosis",
    "coverage_analysis", "model_files", "continuous_ode",
])
def test_example_compiles(name):
    source = (EXAMPLES / f"{name}.py").read_text()
    compile(source, name, "exec")


@requires_cc
def test_model_files_example_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "model_files.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "generated C simulation" in proc.stdout
    assert "heat=0" in proc.stdout and "heat=1" in proc.stdout


def test_quickstart_model_builds_and_agrees():
    sys.path.insert(0, str(EXAMPLES))
    try:
        import quickstart

        model = quickstart.build_model()
    finally:
        sys.path.pop(0)
    from repro import simulate
    from repro.schedule import preprocess
    from repro.stimuli import default_stimuli

    prog = preprocess(model)
    r1 = simulate(prog, default_stimuli(prog), engine="sse", steps=500)
    r2 = simulate(prog, default_stimuli(prog), engine="sse_rac", steps=500)
    assert r1.checksums == r2.checksums


@requires_cc
def test_continuous_ode_example_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "continuous_ode.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "ab3" in proc.stdout

"""Failure injection on the codegen/driver path: broken compilers, crashing
binaries, and corrupted result protocols must surface as typed errors."""

from __future__ import annotations

import pytest

from repro import SimulationOptions
from repro.codegen import generate_c_program
from repro.codegen.driver import (
    CompiledSimulation,
    compile_c_program,
    parse_result,
)
from repro.dtypes import I32
from repro.instrument import build_plan
from repro.model import ModelBuilder
from repro.model.errors import CompilationError, SimulationError
from repro.schedule import preprocess
from repro.stimuli import default_stimuli

from conftest import requires_cc

pytestmark = requires_cc


@pytest.fixture(scope="module")
def generated():
    b = ModelBuilder("Fail")
    x = b.inport("X", dtype=I32)
    b.outport("Y", b.gain("G", x, 2, dtype=I32))
    prog = preprocess(b.build())
    plan = build_plan(prog)
    options = SimulationOptions(steps=20)
    source, layout = generate_c_program(
        prog, plan, default_stimuli(prog), options
    )
    return prog, plan, options, source, layout


class TestCompilerFailures:
    def test_syntax_error_in_source(self, generated):
        *_, layout = generated
        with pytest.raises(CompilationError, match="failed"):
            compile_c_program("int main(void) { return ", layout)

    def test_missing_compiler(self, generated, monkeypatch):
        *_, layout = generated
        import repro.codegen.driver as driver

        monkeypatch.setattr(driver, "find_c_compiler", lambda: None)
        with pytest.raises(CompilationError, match="no C compiler"):
            driver.compile_c_program("int main(void){return 0;}", layout)

    def test_error_message_carries_compiler_output(self, generated):
        *_, layout = generated
        with pytest.raises(CompilationError) as exc:
            compile_c_program("this is not C at all;", layout)
        assert "error" in str(exc.value).lower()


class TestBinaryFailures:
    def test_nonzero_exit_reported(self, generated, tmp_path):
        _, _, _, source, layout = generated
        crashing = source.replace(
            "int main(void) {", 'int main(void) {\n    return 7;\n'
        ) if "int main(void) {" in source else source
        compiled = compile_c_program(crashing, layout, workdir=tmp_path)
        with pytest.raises(SimulationError, match="exit 7"):
            compiled.execute()

    def test_crash_reported(self, generated, tmp_path):
        _, _, _, source, layout = generated
        crashing = source.replace(
            "clock_gettime(CLOCK_MONOTONIC, &_t0);",
            "clock_gettime(CLOCK_MONOTONIC, &_t0);\n"
            "    { volatile int *p = 0; *p = 1; }",
            1,
        )
        assert crashing != source
        compiled = compile_c_program(crashing, layout, workdir=tmp_path)
        with pytest.raises(SimulationError):
            compiled.execute()


class TestProtocolFailures:
    def test_unrecognized_line(self, generated):
        prog, plan, options, _, layout = generated
        with pytest.raises(SimulationError, match="unrecognized"):
            parse_result("bogus 1 2 3", prog, plan, layout, options)

    def test_coverage_size_mismatch(self, generated):
        prog, plan, options, _, layout = generated
        stdout = (
            "steps_run 20\nhalt -1\nsim_seconds 0.0\n"
            "cov actor 1\ncov condition \ncov decision \ncov mcdc \n"
        )
        # actor table has len(prog.actors) points; one char is too few.
        if plan.points.n_actor == 1:
            pytest.skip("model too small for a mismatch")
        with pytest.raises(SimulationError, match="size mismatch"):
            parse_result(stdout, prog, plan, layout, options)

    def test_truncated_output_yields_partial_but_typed_result(self, generated):
        prog, plan, options, _, layout = generated
        # Only the step count arrived (binary was killed mid-print): the
        # parser still produces a result, with empty coverage tables.
        result = parse_result("steps_run 5\nhalt -1\n", prog, plan, layout,
                              options)
        assert result.steps_run == 5
        assert result.coverage is not None
        assert result.coverage.metrics is not None

"""Replay the fuzz corpus: every reproducer in ``tests/corpus/`` runs
through the differential oracle on every rung available locally.

Entries with status ``fixed`` are regression tests and must agree;
entries with status ``open`` are known divergences awaiting a fix and
xfail until someone flips their status.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import available_rungs, load_entries, run_case

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = [entry for _path, entry in load_entries(CORPUS_DIR)]


def _entry_id(entry) -> str:
    return f"{entry.case.name}-{entry.status}"


@pytest.mark.parametrize("entry", ENTRIES, ids=_entry_id)
def test_corpus_entry(entry):
    if entry.status == "open":
        pytest.xfail(f"known open divergence: {entry.note or entry.case.name}")
    report = run_case(entry.case, rungs=available_rungs())
    assert report.agreed, (
        f"regression: {entry.case.name} diverged again "
        f"({entry.note}): {[d.to_dict() for d in report.divergences]}"
    )


def test_corpus_is_not_empty():
    """The seed corpus ships with this repo; an empty corpus means the
    replay harness is silently testing nothing."""
    assert len(ENTRIES) >= 5

"""Regression tests for C literal emission (non-finite and out-of-range).

Two bug classes the differential fuzzer flushed out:

* non-finite parameters and table entries used to be emitted as folded
  division expressions (``(0.0/0.0)``); gcc constant-folds those to a
  NaN whose sign bit differs from Python's positive quiet NaN, and the
  checksum hashes raw IEEE bits, so SSE and AccMoS diverged;
* integer literals were emitted unconformed (``(int8_t)300``), leaving
  the wrap to the C compiler's implementation-defined conversion rather
  than the interpreter's :func:`int_param`.
"""

from __future__ import annotations

import math

import pytest
from conftest import requires_cc
from helpers import assert_results_agree

from repro.codegen.cexpr import float_literal, value_literal
from repro.dtypes import DType
from repro.engines import simulate
from repro.model.builder import ModelBuilder
from repro.stimuli.base import c_double_literal
from repro.stimuli.generators import SequenceStimulus

NAN = float("nan")
INF = float("inf")

INT_DTYPES = [
    DType.I8,
    DType.I16,
    DType.I32,
    DType.I64,
    DType.U8,
    DType.U16,
    DType.U32,
    DType.U64,
]


class TestNonFiniteLiterals:
    def test_macros(self):
        assert c_double_literal(NAN) == "NAN"
        assert c_double_literal(INF) == "INFINITY"
        assert c_double_literal(-INF) == "(-INFINITY)"

    def test_float_literal_f32(self):
        assert float_literal(NAN, DType.F32) == "(float)NAN"
        assert float_literal(-INF, DType.F32) == "(float)(-INFINITY)"

    def test_finite_literals_unchanged(self):
        assert c_double_literal(2.0) == "2.0"
        assert c_double_literal(0.1) == (0.1).hex()


class TestIntLiteralConformance:
    @pytest.mark.parametrize("dtype", INT_DTYPES, ids=lambda d: d.short_name)
    def test_out_of_range_wraps_like_interpreter(self, dtype):
        from repro.actors.math_ops import int_param

        for raw in (
            dtype.max_value + 1,
            dtype.min_value - 1,
            dtype.max_value + 300,
            float(dtype.max_value) + 1.5,
            -1,
            dtype.max_value,
            dtype.min_value,
        ):
            lit = value_literal(raw, dtype)
            expected = int_param(raw, dtype)
            # The emitted digits must be the conformed value, never the
            # raw one: the C compiler's out-of-range conversion is
            # implementation-defined and must not be relied on.
            if expected == -(2**63):
                assert "9223372036854775807" in lit
            else:
                assert str(expected) in lit

    def test_int8_300_wraps_to_44(self):
        assert "44" in value_literal(300, DType.I8)
        assert "300" not in value_literal(300, DType.I8)

    def test_float_param_truncates_then_wraps(self):
        # 300.7 on int8: truncate to 300, wrap to 44 — int_param's rule.
        assert "44" in value_literal(300.7, DType.I8)


def _run_pair(model, stimuli_factory, steps):
    ref = simulate(model, stimuli_factory(), engine="sse", steps=steps)
    acc = simulate(model, stimuli_factory(), engine="accmos", steps=steps)
    assert_results_agree(ref, acc)
    return ref


@requires_cc
class TestNonFiniteEndToEnd:
    @pytest.mark.parametrize("value", [NAN, INF, -INF], ids=["nan", "inf", "-inf"])
    @pytest.mark.parametrize("dtype", [DType.F64, DType.F32], ids=["f64", "f32"])
    def test_constant(self, value, dtype):
        b = ModelBuilder(f"const_nonfinite_{dtype.short_name}")
        c = b.constant("c", value, dtype=dtype)
        u = b.inport("u", dtype=dtype)
        b.outport("y", b.add("s", c, u))
        model = b.build()
        ref = _run_pair(
            model, lambda: {"u": SequenceStimulus([1.0, -2.0, 0.5])}, steps=3
        )
        out = ref.outputs["y"]
        assert math.isnan(out) if value != value else math.isinf(out)

    def test_lookup_table_nonfinite_entries(self):
        b = ModelBuilder("lookup_nonfinite")
        u = b.inport("u", dtype=DType.F64)
        b.outport(
            "y",
            b.lookup1d(
                "lut",
                u,
                breakpoints=[0.0, 1.0, 2.0, 3.0],
                table=[NAN, INF, -INF, 7.5],
            ),
        )
        model = b.build()
        _run_pair(
            model,
            lambda: {"u": SequenceStimulus([0.0, 1.0, 2.0, 3.0, 1.5, 2.5])},
            steps=6,
        )

    def test_direct_lookup_nonfinite_entries(self):
        b = ModelBuilder("direct_nonfinite")
        u = b.inport("u", dtype=DType.I32)
        b.outport(
            "y",
            b.direct_lookup("dl", u, table=[NAN, INF, -INF, 2.0], dtype=DType.F64),
        )
        model = b.build()
        _run_pair(
            model, lambda: {"u": SequenceStimulus([0, 1, 2, 3])}, steps=4
        )


@requires_cc
class TestBoundaryParamsEndToEnd:
    @pytest.mark.parametrize("dtype", INT_DTYPES, ids=lambda d: d.short_name)
    def test_boundary_constants(self, dtype):
        # Float params bypass the static int-fit validation, taking the
        # int_param truncate-then-wrap path in both engines.
        raw = float(dtype.max_value) + 1.5
        b = ModelBuilder(f"boundary_{dtype.short_name}")
        c = b.constant("c", raw, dtype=dtype)
        u = b.inport("u", dtype=dtype)
        b.outport("y", b.add("s", c, u))
        model = b.build()
        _run_pair(
            model, lambda: {"u": SequenceStimulus([0, 1, 2])}, steps=3
        )

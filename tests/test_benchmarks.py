"""The benchmark model suite: Table-1 fidelity, determinism, structural
mix, the motivating model, and the case-study injections."""

from __future__ import annotations

import pytest

from repro import DiagnosticKind, SimulationOptions, simulate
from repro.benchmarks import (
    TABLE1,
    benchmark_stimuli,
    build_benchmark,
    build_csev_with_power_downcast,
    build_csev_with_quantity_overflow,
    build_motivating_model,
)
from repro.benchmarks.inject import (
    POWER_PRODUCT_PATH,
    QUANTITY_ADD_PATH,
    build_csev_healthy,
)
from repro.benchmarks.motivating import expected_overflow_step, motivating_stimuli
from repro.schedule import preprocess
from repro.slx import model_to_xml


@pytest.mark.parametrize("name", sorted(TABLE1))
class TestTable1Fidelity:
    def test_counts_match_paper(self, name):
        model = build_benchmark(name)
        _, n_actors, n_subsystems = TABLE1[name]
        assert model.n_actors == n_actors
        assert model.n_subsystems == n_subsystems

    def test_deterministic_generation(self, name):
        assert model_to_xml(build_benchmark(name)) == model_to_xml(
            build_benchmark(name)
        )

    def test_preprocesses_and_simulates(self, name):
        prog = preprocess(build_benchmark(name))
        result = simulate(prog, benchmark_stimuli(prog), engine="sse", steps=100)
        assert result.steps_run == 100
        assert result.coverage is not None


class TestBenchmarkStructure:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            build_benchmark("NOPE")

    def test_name_is_case_insensitive(self):
        assert build_benchmark("csev").name == "CSEV"

    def test_compute_heavy_models_have_more_math(self):
        """LANS/SPV (computation-heavy per the paper) carry a higher share
        of arithmetic actors than the control-heavy CPUT/RAC."""

        def math_share(name):
            from repro.actors import get_spec

            model = build_benchmark(name)
            hist = model.block_type_histogram()
            total = sum(hist.values())
            math_n = sum(
                count for block_type, count in hist.items()
                if get_spec(block_type).category == "math"
            )
            return math_n / total

        compute = (math_share("LANS") + math_share("SPV")) / 2
        control = (math_share("CPUT") + math_share("RAC")) / 2
        assert compute > control

    def test_every_model_has_unreachable_regions(self):
        """Coverage ceilings stay below 100% like the paper's Table 3."""
        for name in ("CSEV", "TCP"):
            prog = preprocess(build_benchmark(name))
            result = simulate(prog, benchmark_stimuli(prog), engine="sse",
                              steps=2_000)
            from repro.coverage import Metric

            assert result.coverage.percent(Metric.ACTOR) < 95.0

    def test_csev_has_quantity_store(self):
        prog = preprocess(build_benchmark("CSEV"))
        assert "quantity" in prog.stores
        assert prog.stores["quantity"].dtype.short_name == "i32"


class TestMotivatingModel:
    def test_structure_matches_figure1(self):
        model = build_motivating_model()
        hist = model.block_type_histogram()
        assert hist["Accumulator"] == 2
        assert hist["Sum"] == 1

    def test_overflow_occurs_near_expected_step(self):
        prog = preprocess(build_motivating_model())
        estimate = expected_overflow_step()
        result = simulate(
            prog, motivating_stimuli(), engine="sse",
            options=SimulationOptions(
                steps=3 * estimate,
                halt_on=frozenset({DiagnosticKind.WRAP_ON_OVERFLOW}),
            ),
        )
        assert result.halted_at is not None
        assert 0.3 * estimate < result.halted_at < 3 * estimate


class TestCaseStudyInjections:
    def test_healthy_model_never_wraps(self):
        prog = preprocess(build_csev_healthy())
        result = simulate(prog, benchmark_stimuli(prog), engine="sse",
                          steps=3_000)
        wraps = [e for e in result.diagnostics
                 if e.kind is DiagnosticKind.WRAP_ON_OVERFLOW]
        assert wraps == []

    def test_injected_variants_preserve_table1_counts(self):
        _, n_actors, n_subsystems = TABLE1["CSEV"]
        for build in (build_csev_with_quantity_overflow,
                      build_csev_with_power_downcast):
            model = build()
            assert model.n_actors == n_actors
            assert model.n_subsystems == n_subsystems

    def test_error1_wraps_late_at_the_add_actor(self):
        prog = preprocess(build_csev_with_quantity_overflow())
        options = SimulationOptions(
            steps=300_000,
            halt_on=frozenset({DiagnosticKind.WRAP_ON_OVERFLOW}),
        )
        result = simulate(prog, benchmark_stimuli(prog), engine="sse",
                          options=options)
        event = result.diagnostic(QUANTITY_ADD_PATH,
                                  DiagnosticKind.WRAP_ON_OVERFLOW)
        assert event is not None
        assert result.halted_at > 10_000  # long-run error

    def test_error2_wraps_immediately_at_the_product(self):
        prog = preprocess(build_csev_with_power_downcast())
        result = simulate(prog, benchmark_stimuli(prog), engine="sse",
                          steps=2_000)
        event = result.diagnostic(POWER_PRODUCT_PATH,
                                  DiagnosticKind.WRAP_ON_OVERFLOW)
        assert event is not None and event.first_step < 50
        downcast = result.diagnostic(POWER_PRODUCT_PATH, DiagnosticKind.DOWNCAST)
        assert downcast is not None and downcast.first_step == -1

"""Smaller internal contracts: C expression helpers, cycle reporting,
summaries, and CLI odds and ends."""

from __future__ import annotations

import pytest

from repro.dtypes import BOOL, F32, F64, I8, I32, I64, U64
from repro.model import ModelBuilder
from repro.model.errors import ScheduleError
from repro.schedule import preprocess


class TestCExprHelpers:
    def test_emit_cast_identity(self):
        from repro.codegen.cexpr import emit_cast

        assert emit_cast("x", I32, I32) == "x"

    def test_emit_cast_to_bool(self):
        from repro.codegen.cexpr import emit_cast

        assert emit_cast("x", I32, BOOL) == "ACC_TO_BOOL(x)"

    def test_emit_cast_from_bool_is_plain(self):
        from repro.codegen.cexpr import emit_cast

        assert emit_cast("x", BOOL, I32) == "(int32_t)(x)"

    def test_emit_cast_f32_to_int_promotes(self):
        from repro.codegen.cexpr import emit_cast

        assert emit_cast("x", F32, I8) == "acc_cast_f64_i8((double)(x))"

    def test_emit_cast_checked_helper(self):
        from repro.codegen.cexpr import emit_cast

        assert emit_cast("x", I64, I8) == "acc_cast_i64_i8(x)"

    def test_value_literal_int64_min(self):
        from repro.codegen.cexpr import value_literal

        text = value_literal(-(2**63), I64)
        assert "9223372036854775807" in text and "- 1" in text

    def test_float_literal_exact(self):
        from repro.codegen.cexpr import value_literal

        assert value_literal(2.0, F64) == "2.0"  # integral floats stay readable
        assert value_literal(0.1, F64) == "0x1.999999999999ap-4"  # exact hex
        assert float.fromhex(value_literal(0.5, F64)) == 0.5

    def test_runtime_header_contains_all_int_helpers(self):
        from repro.codegen.runtime import runtime_header
        from repro.dtypes.dtype import INTEGER_DTYPES

        header = runtime_header()
        for dt in INTEGER_DTYPES:
            for op in ("add", "sub", "mul", "div", "mod", "neg"):
                assert f"acc_{op}_{dt.short_name}(" in header


class TestCycleReporting:
    def test_cycle_message_names_the_actors(self):
        b = ModelBuilder("Loop")
        x = b.inport("X", dtype=I32)
        b.block("Sum", "A", [x, ("B", 0)], operator="++", out_dtype=I32)
        b.block("Gain", "B", [("A", 0)], params={"gain": 1}, out_dtype=I32)
        with pytest.raises(ScheduleError) as exc:
            preprocess(b.build())
        message = str(exc.value)
        assert "Loop_A" in message and "Loop_B" in message
        assert "->" in message  # a witness path, not just a node list

    def test_three_node_cycle(self):
        b = ModelBuilder("Loop3")
        x = b.inport("X", dtype=I32)
        b.block("Sum", "A", [x, ("C", 0)], operator="++", out_dtype=I32)
        b.block("Gain", "B", [("A", 0)], params={"gain": 1}, out_dtype=I32)
        b.block("Gain", "C", [("B", 0)], params={"gain": 1}, out_dtype=I32)
        with pytest.raises(ScheduleError, match="algebraic loop"):
            preprocess(b.build())


class TestProgramConveniences:
    def test_summary_and_lookups(self):
        b = ModelBuilder("Conv")
        x = b.inport("X", dtype=I32)
        b.outport("Y", b.gain("G", x, 2))
        prog = preprocess(b.build())
        assert "Conv" in prog.summary()
        assert prog.actor_by_path("Conv_G").block_type == "Gain"
        assert prog.signal_by_name("Conv_G_out").dtype is I32
        with pytest.raises(KeyError):
            prog.actor_by_path("Conv_Ghost")
        with pytest.raises(KeyError):
            prog.signal_by_name("nope")

    def test_guard_chain_empty_for_unguarded(self):
        b = ModelBuilder("Conv")
        x = b.inport("X", dtype=I32)
        b.outport("Y", x)
        prog = preprocess(b.build())
        assert prog.guard_chain(None) == []


class TestCliCoverageCommand:
    def test_listing_printed(self, capsys, tmp_path):
        from repro.cli import main
        from repro.slx import save_model

        b = ModelBuilder("Cov")
        x = b.inport("X", dtype=I32)
        sw = b.switch("Sw", x, x, b.neg("N", x), threshold=0)
        b.outport("Y", sw)
        path = tmp_path / "cov.xml"
        save_model(b.build(), path)
        assert main(["coverage", str(path), "--engine", "sse",
                     "--steps", "20"]) == 0
        out = capsys.readouterr().out
        assert "uncovered points" in out or "every coverage point hit" in out

    def test_engine_without_coverage_fails(self, capsys, tmp_path):
        # --no-coverage turns collection off: the command must refuse.
        from repro.cli import main
        from repro.slx import save_model

        b = ModelBuilder("Cov")
        x = b.inport("X", dtype=I32)
        b.outport("Y", x)
        path = tmp_path / "cov.xml"
        save_model(b.build(), path)
        assert main(["coverage", str(path), "--engine", "sse",
                     "--steps", "5", "--no-coverage"]) == 1

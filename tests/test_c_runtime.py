"""Fuzz the generated C runtime helpers against the Python reference.

One harness binary is compiled per session from the real runtime prelude
(:func:`repro.codegen.runtime.runtime_header`); it reads operation requests
on stdin and reports result + flags.  Hypothesis supplies the operands, and
every response must match ``checked_*`` / ``checked_cast`` exactly — value
and flags both.
"""

from __future__ import annotations

import math
import subprocess

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen.runtime import runtime_header
from repro.dtypes import DType, F32, F64
from repro.dtypes.arith import (
    checked_add,
    checked_cast,
    checked_div,
    checked_mod,
    checked_mul,
    checked_neg,
    checked_sub,
)
from repro.dtypes.dtype import INTEGER_DTYPES

from conftest import HAS_CC

pytestmark = pytest.mark.skipif(not HAS_CC, reason="needs a C compiler")

_ARITH = ("add", "sub", "mul", "div", "mod")
_PY_ARITH = {
    "add": checked_add, "sub": checked_sub, "mul": checked_mul,
    "div": checked_div, "mod": checked_mod,
}


def _harness_source() -> str:
    lines = [runtime_header()]
    lines.append(r"""
static void report_i(long long v) {
    printf("%lld %d %d %d %d\n", v, f_ov, f_dz, f_pl, f_nf);
}
static void report_d(double v) {
    printf("%a %d %d %d %d\n", v, f_ov, f_dz, f_pl, f_nf);
}
int main(void) {
    char op[32];
    while (scanf("%31s", op) == 1) {
        FLAGS_RESET();
""")
    branches = []
    for dt in INTEGER_DTYPES:
        t, s = dt.c_name, dt.short_name
        for name in _ARITH:
            branches.append(
                f'if (!strcmp(op, "{name}_{s}")) {{ long long a, b; '
                f'scanf("%lld %lld", &a, &b); '
                f"report_i((long long)acc_{name}_{s}(({t})a, ({t})b)); continue; }}"
            )
        branches.append(
            f'if (!strcmp(op, "neg_{s}")) {{ long long a; scanf("%lld", &a); '
            f"report_i((long long)acc_neg_{s}(({t})a)); continue; }}"
        )
        branches.append(
            f'if (!strcmp(op, "cast_f64_{s}")) {{ double a; scanf("%la", &a); '
            f"report_i((long long)acc_cast_f64_{s}(a)); continue; }}"
        )
        branches.append(
            f'if (!strcmp(op, "cast_{s}_f64")) {{ long long a; scanf("%lld", &a); '
            f"report_d(acc_cast_{s}_f64(({t})a)); continue; }}"
        )
        branches.append(
            f'if (!strcmp(op, "cast_{s}_f32")) {{ long long a; scanf("%lld", &a); '
            f"report_d((double)acc_cast_{s}_f32(({t})a)); continue; }}"
        )
        for dst in INTEGER_DTYPES:
            if dst is dt:
                continue
            branches.append(
                f'if (!strcmp(op, "cast_{s}_{dst.short_name}")) '
                f'{{ long long a; scanf("%lld", &a); '
                f"report_i((long long)acc_cast_{s}_{dst.short_name}(({t})a)); "
                f"continue; }}"
            )
    branches.append(
        'if (!strcmp(op, "cast_f64_f32")) { double a; scanf("%la", &a); '
        "report_d((double)acc_cast_f64_f32(a)); continue; }"
    )
    lines.append("        " + "\n        ".join(branches))
    lines.append("""
        return 2;  /* unknown op */
    }
    return 0;
}
""")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("c_runtime")
    c_file = workdir / "harness.c"
    c_file.write_text(_harness_source())
    binary = workdir / "harness"
    subprocess.run(
        ["gcc", "-O3", "-ffp-contract=off", "-std=c11",
         "-o", str(binary), str(c_file), "-lm"],
        check=True, capture_output=True,
    )

    def run(requests: list[str]) -> list[tuple]:
        proc = subprocess.run(
            [str(binary)], input="\n".join(requests) + "\n",
            capture_output=True, text=True, check=True,
        )
        out = []
        for line in proc.stdout.splitlines():
            value, ov, dz, pl, nf = line.split()
            out.append((value, int(ov), int(dz), int(pl), int(nf)))
        return out

    return run


def _i64_range(dt: DType):
    return st.integers(min_value=dt.min_value, max_value=dt.max_value)


def _enc(value: int) -> int:
    """Send operands in signed-64 two's complement (scanf reads %lld)."""
    return value - 2**64 if value >= 2**63 else value


def _expected_flags(flags):
    return (int(flags.overflow), int(flags.div_by_zero),
            int(flags.precision_loss), int(flags.non_finite))


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.data())
def test_integer_arith_matches(harness, data):
    requests, expected = [], []
    for dt in INTEGER_DTYPES:
        s = dt.short_name
        for name in _ARITH:
            a = data.draw(_i64_range(dt))
            b = data.draw(_i64_range(dt))
            requests.append(f"{name}_{s} {_enc(a)} {_enc(b)}")
            value, flags = _PY_ARITH[name](a, b, dt)
            expected.append((str(value), *_expected_flags(flags)))
        a = data.draw(_i64_range(dt))
        requests.append(f"neg_{s} {_enc(a)}")
        value, flags = checked_neg(a, dt)
        expected.append((str(value), *_expected_flags(flags)))
    # u64 results print as signed long long; normalize expectations.
    normalized = []
    for (value, *flags), request in zip(expected, requests):
        v = int(value)
        if v >= 2**63:
            v -= 2**64
        normalized.append((str(v), *flags))
    assert harness(requests) == normalized


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.data())
def test_int_to_int_casts_match(harness, data):
    requests, expected = [], []
    for src in INTEGER_DTYPES:
        for dst in INTEGER_DTYPES:
            if src is dst:
                continue
            a = data.draw(_i64_range(src))
            requests.append(f"cast_{src.short_name}_{dst.short_name} {_enc(a)}")
            value, flags = checked_cast(a, src, dst)
            if value >= 2**63:
                value -= 2**64
            expected.append((str(value), *_expected_flags(flags)))
    assert harness(requests) == expected


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    st.floats(allow_nan=True, allow_infinity=True),
    st.floats(min_value=-1e20, max_value=1e20, allow_nan=False),
)
def test_float_to_int_casts_match(harness, value, medium):
    requests, expected = [], []
    for operand in (value, medium):
        for dt in INTEGER_DTYPES:
            requests.append(f"cast_f64_{dt.short_name} {operand.hex()}")
            out, flags = checked_cast(operand, F64, dt)
            if out >= 2**63:
                out -= 2**64
            expected.append((str(out), *_expected_flags(flags)))
    assert harness(requests) == expected


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.data())
def test_int_to_float_casts_match(harness, data):
    requests, expected = [], []
    for src in INTEGER_DTYPES:
        a = data.draw(_i64_range(src))
        for target, name in ((F64, "f64"), (F32, "f32")):
            requests.append(f"cast_{src.short_name}_{name} {_enc(a)}")
            out, flags = checked_cast(a, src, target)
            expected.append((float(out).hex(), *_expected_flags(flags)))
    got = harness(requests)
    normalized = [(float.fromhex(v).hex(), *flags) for v, *flags in got]
    assert normalized == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.floats(allow_nan=True, allow_infinity=True))
def test_f64_to_f32_matches(harness, value):
    out, flags = checked_cast(value, F64, F32)
    (got_value, *got_flags), = harness([f"cast_f64_f32 {value.hex()}"])
    got = float.fromhex(got_value)
    if math.isnan(out):
        assert math.isnan(got)
    else:
        assert got == out
    assert tuple(got_flags) == _expected_flags(flags)

"""Detailed coverage findings and test-suite accumulation."""

from __future__ import annotations

import pytest

from repro import simulate
from repro.coverage import (
    Metric,
    accumulate_coverage,
    coverage_listing,
    uncovered_points,
)
from repro.dtypes import I32
from repro.model import ModelBuilder
from repro.schedule import preprocess
from repro.stimuli import ConstantStimulus, SequenceStimulus


def _prog():
    b = ModelBuilder("Det")
    x = b.inport("X", dtype=I32)
    y = b.inport("Y", dtype=I32)
    p = b.relational("P", ">", x, b.constant("Z", 0))
    q = b.relational("Q", ">", y, b.constant("Z2", 0))
    both = b.logic("Both", "AND", [p, q])
    sw = b.switch("Sw", x, both, b.neg("N", x), threshold=1)
    en = b.relational("En", ">", x, b.constant("K90", 90))
    sub = b.subsystem("Rare", inputs=[x])
    sub.inner.gain("Boost", sub.input_ref(0), 5)
    sub.set_enable(en)
    b.outport("Out", sw)
    return preprocess(b.build())


def _run(prog, xs, ys):
    return simulate(
        prog,
        {"X": SequenceStimulus(xs), "Y": SequenceStimulus(ys)},
        engine="sse", steps=max(len(xs), len(ys)),
    )


class TestUncoveredPoints:
    def test_never_executed_actor_reported(self):
        prog = _prog()
        result = _run(prog, [1, -1], [1, -1])  # x never > 90
        findings = uncovered_points(prog, result.coverage)
        texts = [str(f) for f in findings]
        assert any("Det_Rare_Boost" in t and "never executed" in t
                   for t in texts)

    def test_missing_branch_reported_with_label(self):
        prog = _prog()
        result = _run(prog, [1], [1])  # switch only takes the then branch
        findings = uncovered_points(prog, result.coverage)
        labels = [f.detail for f in findings
                  if f.metric is Metric.CONDITION and f.actor_path == "Det_Sw"]
        assert labels == ["branch never taken: else"]

    def test_missing_decision_outcome_reported(self):
        prog = _prog()
        result = _run(prog, [1], [1])
        findings = uncovered_points(prog, result.coverage)
        p_outcomes = [f.detail for f in findings
                      if f.metric is Metric.DECISION and f.actor_path == "Det_P"]
        assert p_outcomes == ["outcome never observed: false"]

    def test_mcdc_sides_reported_per_condition(self):
        prog = _prog()
        result = _run(prog, [1], [1])  # only TT observed
        findings = [f for f in uncovered_points(prog, result.coverage)
                    if f.metric is Metric.MCDC]
        # Neither condition was shown to drive the decision false.
        assert len(findings) == 2
        assert all("false" in f.detail for f in findings)

    def test_full_coverage_reports_nothing(self):
        b = ModelBuilder("Tiny")
        x = b.inport("X", dtype=I32)
        b.outport("Y", b.gain("G", x, 2))
        prog = preprocess(b.build())
        result = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse", steps=3)
        assert uncovered_points(prog, result.coverage) == []
        assert "every coverage point hit" in coverage_listing(prog, result.coverage)

    def test_listing_caps_items(self):
        prog = _prog()
        result = _run(prog, [1], [1])
        text = coverage_listing(prog, result.coverage, max_items=2)
        assert "... and" in text


class TestAccumulateCoverage:
    def test_suite_covers_more_than_any_single_case(self):
        prog = _prog()
        cases = [
            {"X": ConstantStimulus(1), "Y": ConstantStimulus(1)},
            {"X": ConstantStimulus(-1), "Y": ConstantStimulus(1)},
            {"X": ConstantStimulus(1), "Y": ConstantStimulus(-1)},
            {"X": ConstantStimulus(95), "Y": ConstantStimulus(-1)},
        ]
        merged, per_run = accumulate_coverage(prog, cases, engine="sse", steps=5)
        assert len(per_run) == 4
        for metric in Metric:
            best_single = max(r.metrics[metric].covered for r in per_run)
            assert merged.metrics[metric].covered >= best_single
        # The suite together exercises the rare region and both AND sides.
        assert merged.percent(Metric.ACTOR) == 100.0
        assert merged.percent(Metric.MCDC) == 100.0

    def test_empty_suite_rejected(self):
        prog = _prog()
        with pytest.raises(ValueError, match="no stimuli"):
            accumulate_coverage(prog, [], engine="sse")

    def test_engine_without_coverage_rejected(self):
        prog = _prog()
        with pytest.raises(ValueError, match="no coverage"):
            accumulate_coverage(
                prog,
                [{"X": ConstantStimulus(1), "Y": ConstantStimulus(1)}],
                engine="sse_rac", steps=2,
            )


class TestRelayBlock:
    def test_hysteresis_latching(self):
        b = ModelBuilder("R")
        x = b.inport("X", dtype=I32)
        b.outport("Y", b.relay("Ry", x, on_threshold=5, off_threshold=-5,
                               on_value=1, off_value=0))
        prog = preprocess(b.build())
        from repro import SimulationOptions

        options = SimulationOptions(steps=6, collect="all", monitor_limit=8)
        result = simulate(
            prog, {"X": SequenceStimulus([0, 7, 0, -7, 0, 7])},
            engine="sse", options=options,
        )
        values = [v for _, v in result.monitored["R_Y"]]
        # off; rises on; holds; falls off; holds; on again.
        assert values == [0, 1, 1, 0, 0, 1]

    def test_relay_condition_coverage(self):
        b = ModelBuilder("R")
        x = b.inport("X", dtype=I32)
        b.outport("Y", b.relay("Ry", x, on_threshold=5, off_threshold=-5))
        prog = preprocess(b.build())
        result = simulate(prog, {"X": ConstantStimulus(0)}, engine="sse", steps=3)
        assert result.coverage.metrics[Metric.CONDITION].covered == 1
        result = simulate(prog, {"X": SequenceStimulus([7, -7])}, engine="sse",
                          steps=4)
        assert result.coverage.metrics[Metric.CONDITION].covered == 2

    def test_relay_threshold_order_validated(self):
        from repro.model.errors import ValidationError

        b = ModelBuilder("R")
        x = b.inport("X", dtype=I32)
        b.relay("Ry", x, on_threshold=-5, off_threshold=5)
        with pytest.raises(ValidationError, match="must not exceed"):
            preprocess(b.build())

"""Shared fixtures."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.codegen.driver import find_c_compiler  # noqa: E402

HAS_CC = find_c_compiler() is not None

requires_cc = pytest.mark.skipif(
    not HAS_CC, reason="no C compiler available for AccMoS engine tests"
)


@pytest.fixture(scope="session")
def cc_available() -> bool:
    return HAS_CC

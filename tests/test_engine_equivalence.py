"""Cross-engine equivalence over the model zoo.

The library's central invariant: for any model and stimuli, all four
engines produce identical outputs and per-step checksums; the two
instrumented engines (SSE, AccMoS) additionally produce identical coverage
bitmaps and diagnostics.  Every zoo model exercises a different slice of
the actor palette, so a divergence anywhere in semantics, templates, or
the Python backend fails here with the model named.
"""

from __future__ import annotations

import pytest

from repro import SimulationOptions, simulate
from repro.schedule import preprocess

from conftest import requires_cc
from helpers import ZOO, assert_results_agree

STEPS = 400


@pytest.fixture(scope="module")
def zoo_programs():
    programs = {}
    for name, factory in ZOO.items():
        model, stimuli = factory()
        programs[name] = (preprocess(model), stimuli)
    return programs


@pytest.fixture(scope="module")
def sse_results(zoo_programs):
    results = {}
    for name, (prog, stimuli) in zoo_programs.items():
        results[name] = simulate(prog, stimuli(), engine="sse", steps=STEPS)
    return results


@pytest.mark.parametrize("name", sorted(ZOO))
def test_sse_ac_matches_sse(zoo_programs, sse_results, name):
    prog, stimuli = zoo_programs[name]
    result = simulate(prog, stimuli(), engine="sse_ac", steps=STEPS)
    assert_results_agree(sse_results[name], result, coverage=False, diagnostics=False)


@pytest.mark.parametrize("name", sorted(ZOO))
def test_sse_rac_matches_sse(zoo_programs, sse_results, name):
    prog, stimuli = zoo_programs[name]
    result = simulate(prog, stimuli(), engine="sse_rac", steps=STEPS)
    assert_results_agree(sse_results[name], result, coverage=False, diagnostics=False)


@requires_cc
@pytest.mark.parametrize("name", sorted(ZOO))
def test_accmos_matches_sse(zoo_programs, sse_results, name):
    prog, stimuli = zoo_programs[name]
    result = simulate(prog, stimuli(), engine="accmos", steps=STEPS)
    assert_results_agree(sse_results[name], result)


@requires_cc
@pytest.mark.parametrize("name", ["int_arith", "guarded", "stores", "stateful"])
def test_accmos_matches_sse_long(zoo_programs, name):
    """Longer runs catch state-update and wrap-accumulation divergence."""
    prog, stimuli = zoo_programs[name]
    reference = simulate(prog, stimuli(), engine="sse", steps=5_000)
    result = simulate(prog, stimuli(), engine="accmos", steps=5_000)
    assert_results_agree(reference, result)


@pytest.mark.parametrize("name", sorted(ZOO))
def test_sse_is_deterministic(zoo_programs, sse_results, name):
    prog, stimuli = zoo_programs[name]
    again = simulate(prog, stimuli(), engine="sse", steps=STEPS)
    assert_results_agree(sse_results[name], again)


@requires_cc
def test_zero_steps_all_engines(zoo_programs):
    prog, stimuli = zoo_programs["int_arith"]
    reference = simulate(prog, stimuli(), engine="sse", steps=0)
    assert reference.steps_run == 0
    for engine in ("sse_ac", "sse_rac", "accmos"):
        result = simulate(prog, stimuli(), engine=engine, steps=0)
        assert result.steps_run == 0
        assert result.checksums == reference.checksums


@requires_cc
def test_single_step_all_engines(zoo_programs):
    prog, stimuli = zoo_programs["float_pipeline"]
    reference = simulate(prog, stimuli(), engine="sse", steps=1)
    for engine in ("sse_ac", "sse_rac"):
        result = simulate(prog, stimuli(), engine=engine, steps=1)
        assert_results_agree(reference, result, coverage=False, diagnostics=False)
    result = simulate(prog, stimuli(), engine="accmos", steps=1)
    assert_results_agree(reference, result)


@requires_cc
def test_monitored_signals_match(zoo_programs):
    prog, stimuli = zoo_programs["control"]
    options = SimulationOptions(steps=100, collect="all", monitor_limit=50)
    reference = simulate(prog, stimuli(), engine="sse", options=options)
    result = simulate(prog, stimuli(), engine="accmos", options=options)
    assert set(result.monitored) == set(reference.monitored)
    for path, samples in reference.monitored.items():
        assert result.monitored[path] == samples, path

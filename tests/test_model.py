"""Unit tests for the model layer: actors, ports, connections, subsystems,
the builder, and structural validation."""

from __future__ import annotations

import pytest

from repro.dtypes import BOOL, F64, I16, I32
from repro.model import (
    Actor,
    Connection,
    EndPoint,
    Model,
    ModelBuilder,
    Port,
    Subsystem,
    ValidationError,
    validate_model,
)
from repro.model.builder import Ref, as_ref
from repro.model.errors import ConnectionError_


class TestPort:
    def test_defaults(self):
        port = Port(2)
        assert port.name == "port2" and port.dtype is None

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Port(-1)


class TestActor:
    def test_create(self):
        actor = Actor.create("Add", "Sum", n_inputs=2, operator="++", out_dtype=I32)
        assert actor.n_inputs == 2 and actor.n_outputs == 1
        assert actor.out_dtype is I32

    def test_name_validation(self):
        with pytest.raises(ValueError):
            Actor.create("", "Sum", n_inputs=1)
        with pytest.raises(ValueError):
            Actor.create("has space", "Sum", n_inputs=1)
        with pytest.raises(ValueError):
            Actor.create("dot.name", "Sum", n_inputs=1)

    def test_non_dense_ports_rejected(self):
        with pytest.raises(ValueError, match="densely"):
            Actor(name="A", block_type="Sum", inputs=[Port(1)])

    def test_copy_is_deep_enough(self):
        actor = Actor.create("G", "Gain", n_inputs=1, params={"gain": 2})
        clone = actor.copy()
        clone.params["gain"] = 5
        clone.outputs[0].dtype = I32
        assert actor.params["gain"] == 2
        assert actor.outputs[0].dtype is None

    def test_out_dtype_requires_single_output(self):
        actor = Actor.create("D", "Demux", n_inputs=1, n_outputs=2)
        with pytest.raises(ValueError):
            _ = actor.out_dtype


class TestEndpointsAndRefs:
    def test_endpoint_str(self):
        assert str(EndPoint("A", 1)) == "A:1"
        assert str(Connection.of("A", 0, "B", 2)) == "A:0 -> B:2"

    def test_as_ref_accepts_strings_tuples_refs(self):
        assert as_ref("X") == Ref("X", 0)
        assert as_ref(("X", 3)) == Ref("X", 3)
        assert as_ref(Ref("Y", 1)) == Ref("Y", 1)

    def test_as_ref_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_ref(42)


class TestSubsystem:
    def test_duplicate_actor_rejected(self):
        scope = Subsystem("S")
        scope.add_actor(Actor.create("A", "Terminator", n_inputs=1, n_outputs=0))
        with pytest.raises(ValidationError, match="duplicate"):
            scope.add_actor(Actor.create("A", "Terminator", n_inputs=1, n_outputs=0))

    def test_actor_subsystem_name_clash_rejected(self):
        scope = Subsystem("S")
        scope.add_subsystem(Subsystem("Inner"))
        with pytest.raises(ValidationError, match="duplicate"):
            scope.add_actor(Actor.create("Inner", "Ground", n_inputs=0))

    def test_resolve(self):
        scope = Subsystem("S")
        actor = scope.add_actor(Actor.create("A", "Ground", n_inputs=0))
        child = scope.add_subsystem(Subsystem("C"))
        assert scope.resolve("A") is actor
        assert scope.resolve("C") is child
        with pytest.raises(KeyError):
            scope.resolve("missing")

    def test_iter_actors_paths_use_underscore_convention(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        sub = b.subsystem("S", inputs=[x])
        sub.inner.gain("G", sub.input_ref(0), 2)
        model = b._model
        paths = {path for path, _ in model.iter_actors()}
        assert "M_X" in paths
        assert "M_S_G" in paths

    def test_counts(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        sub = b.subsystem("S", inputs=[x])
        inner_ref = sub.inner.gain("G", sub.input_ref(0), 2)
        nested = sub.inner.subsystem("N", inputs=[inner_ref])
        nested.inner.gain("G2", nested.input_ref(0), 3)
        model = b._model
        assert model.n_subsystems == 2
        # X, S.In1, S.G, N.In1, N.G2
        assert model.n_actors == 5


class TestBuilder:
    def test_quickstart_shape(self):
        b = ModelBuilder("Demo")
        x = b.inport("X", dtype=I32)
        acc = b.accumulator("Acc", x, dtype=I32)
        b.outport("Y", acc)
        model = b.build()
        assert model.n_actors == 3
        assert [p.name for p in model.inports] == ["X"]
        assert [p.name for p in model.outports] == ["Y"]

    def test_build_only_on_root(self):
        b = ModelBuilder("Demo")
        x = b.inport("X", dtype=I32)
        sub = b.subsystem("S", inputs=[x])
        with pytest.raises(ValidationError, match="root builder"):
            sub.inner.build()

    def test_sum_signs_must_match_input_count(self):
        b = ModelBuilder("Demo")
        x = b.inport("X", dtype=I32)
        with pytest.raises(ValidationError):
            b.sum_("S", [x, x], signs="+")

    def test_fresh_name_never_collides(self):
        b = ModelBuilder("Demo")
        b.constant("Pad1", 0)
        x = b.inport("X", dtype=I32)
        name = b.fresh_name("Pad")
        assert name != "Pad1"
        b.gain(name, x, 1)

    def test_subsystem_enable_must_come_after_inputs(self):
        b = ModelBuilder("Demo")
        x = b.inport("X", dtype=I32)
        sub = b.subsystem("S", inputs=[x])
        sub.inner.terminator("T", sub.input_ref(0))
        sub.set_enable(x)
        with pytest.raises(ValidationError, match="before set_enable"):
            sub.add_input(x)

    def test_double_enable_rejected(self):
        b = ModelBuilder("Demo")
        x = b.inport("X", dtype=I32)
        sub = b.subsystem("S", inputs=[x])
        sub.inner.terminator("T", sub.input_ref(0))
        sub.set_enable(x)
        with pytest.raises(ValidationError, match="already has an enable"):
            sub.set_enable(x)

    def test_data_store_roundtrip(self):
        b = ModelBuilder("Demo")
        x = b.inport("X", dtype=I32)
        store = b.data_store("mem", dtype=I32, initial=7)
        value = b.ds_read("Rd", store)
        b.ds_write("Wr", store, b.add("Add", value, x, dtype=I32))
        b.outport("Y", value)
        model = b.build()
        assert model.n_actors == 6


class TestValidation:
    def _base(self):
        b = ModelBuilder("V")
        x = b.inport("X", dtype=I32)
        return b, x

    def test_unconnected_input_rejected(self):
        b, x = self._base()
        scope = b.scope
        scope.add_actor(Actor.create("G", "Gain", n_inputs=1, params={"gain": 2}))
        with pytest.raises(ConnectionError_, match="not connected"):
            b.build()

    def test_double_driven_input_rejected(self):
        b, x = self._base()
        g = b.gain("G", x, 2)
        b.connect(x, ("G", 0))  # second driver
        with pytest.raises(ConnectionError_, match="driven by 2"):
            b.build()

    def test_dangling_output_allowed(self):
        b, x = self._base()
        b.gain("G", x, 2)  # output goes nowhere: fine
        b.build()

    def test_unknown_block_type_rejected(self):
        b, x = self._base()
        b.scope.add_actor(Actor.create("W", "Warp", n_inputs=0))
        with pytest.raises(ValidationError, match="unknown block type"):
            b.build()

    def test_unknown_endpoint_rejected(self):
        b, x = self._base()
        b.scope.connect(Connection.of("X", 0, "Ghost", 0))
        with pytest.raises(ConnectionError_):
            b.build()

    def test_out_of_range_port_rejected(self):
        b, x = self._base()
        g = b.gain("G", x, 2)
        b.scope.connect(Connection.of("G", 1, "G", 0))  # no output port 1
        with pytest.raises(ConnectionError_, match="out of range"):
            b.build()

    def test_undeclared_store_rejected(self):
        b, x = self._base()
        b.ds_read("Rd", "ghost_store")
        with pytest.raises(ValidationError, match="undeclared data store"):
            b.build()

    def test_store_visible_in_child_scope(self):
        b, x = self._base()
        b.data_store("mem", dtype=I32)
        sub = b.subsystem("S", inputs=[x])
        inner_value = sub.inner.ds_read("Rd", "mem")
        sub.set_output(inner_value)
        b.build()

    def test_store_not_visible_in_parent_scope(self):
        b, x = self._base()
        sub = b.subsystem("S", inputs=[x])
        sub.inner.data_store("inner_mem", dtype=I32)
        sub.inner.terminator("T", sub.input_ref(0))
        b.ds_read("Rd", "inner_mem")
        with pytest.raises(ValidationError, match="undeclared data store"):
            b.build()

    def test_arity_checked_against_registry(self):
        b, x = self._base()
        b.scope.add_actor(
            Actor.create("S", "Switch", n_inputs=2, operator=None)
        )
        b.connect(x, ("S", 0))
        b.connect(x, ("S", 1))
        with pytest.raises(ValidationError, match="takes 3..3 inputs"):
            b.build()

    def test_operator_alphabet_checked(self):
        b, x = self._base()
        b.sum_("S", [x, x], signs="+*")
        with pytest.raises(ValidationError, match="must use only"):
            b.build()

    def test_unexpected_operator_rejected(self):
        b, x = self._base()
        actor = Actor.create("G", "Gain", n_inputs=1, operator="+",
                             params={"gain": 2})
        b.scope.add_actor(actor)
        b.connect(x, ("G", 0))
        with pytest.raises(ValidationError, match="takes no operator"):
            b.build()

    def test_missing_required_param(self):
        b, x = self._base()
        b.block("Gain", "G", [x])  # no gain param
        with pytest.raises(ValidationError, match="requires parameter 'gain'"):
            b.build()

    def test_bool_arithmetic_output_rejected(self):
        b, x = self._base()
        flag = b.relational("R", ">", x, b.constant("Z", 0))
        b.sum_("S", [flag, flag], dtype=BOOL)
        with pytest.raises(ValidationError, match="bool output"):
            b.build()

    def test_gain_must_fit_output_dtype(self):
        b, x = self._base()
        narrow = b.dtc("N", x, I16)
        b.gain("G", narrow, 100_000, dtype=I16)
        with pytest.raises(ValidationError, match="does not fit"):
            b.build()


class TestModelContainer:
    def test_histogram(self):
        b = ModelBuilder("H")
        x = b.inport("X", dtype=F64)
        b.gain("G1", x, 2.0)
        b.gain("G2", x, 3.0)
        model = b.build()
        hist = model.block_type_histogram()
        assert hist == {"Gain": 2, "Inport": 1}

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Model("")

    def test_find_subsystem(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        sub = b.subsystem("A", inputs=[x])
        nested = sub.inner.subsystem("B", inputs=[sub.input_ref(0)])
        nested.inner.terminator("T", nested.input_ref(0))
        model = b._model
        assert model.root.find_subsystem("A.B") is not None
        assert model.root.find_subsystem("A.C") is None

"""Telemetry: spans, metrics, profiler, exporters, CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.dtypes import I32
from repro.engines.base import SimulationOptions
from repro.engines.sse import run_sse
from repro.model import ModelBuilder
from repro.runner import ArtifactCache, SimulationJob, run_jobs
from repro.schedule import preprocess
from repro.stimuli import default_stimuli
from repro.telemetry import (
    HistogramData,
    MetricsRegistry,
    SseProfiler,
    Tracer,
    cache_hit_ratio,
    chrome_trace,
    render_tree,
)

from conftest import requires_cc


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    telemetry.disable()
    yield
    telemetry.disable()


def _prog(name="Tele"):
    b = ModelBuilder(name)
    x = b.inport("X", dtype=I32)
    acc = b.accumulator("Acc", x, dtype=I32)
    b.outport("Y", acc)
    return preprocess(b.build())


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_and_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", model="M") as outer:
            with tracer.span("inner") as inner:
                inner.set(key=1)
        spans = tracer.finished()
        assert [s.name for s in spans] == ["inner", "outer"]
        by_name = {s.name: s for s in spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        assert by_name["outer"].attrs == {"model": "M"}
        assert by_name["inner"].attrs == {"key": 1}
        assert all(s.duration >= 0 for s in spans)

    def test_exception_recorded_and_stack_unwound(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (span,) = tracer.finished()
        assert span.attrs["error"] == "ValueError"
        assert tracer.current() is None

    def test_adopt_makes_foreign_span_the_parent(self):
        tracer = Tracer()
        with tracer.span("dispatch") as dispatch:
            dispatch_id = dispatch.span_id
        with tracer.adopt(dispatch_id):
            with tracer.span("job"):
                pass
        job = [s for s in tracer.finished() if s.name == "job"][0]
        assert job.parent_id == dispatch_id

    def test_absorb_reparents_roots_only(self):
        worker = Tracer()
        with worker.span("root"):
            with worker.span("child"):
                pass
        shipped = [s.to_dict() for s in worker.finished()]

        parent = Tracer()
        with parent.span("pool") as pool:
            pool_id = pool.span_id
        parent.absorb(shipped, parent_id=pool_id)
        by_name = {s.name: s for s in parent.finished()}
        assert by_name["root"].parent_id == pool_id
        assert by_name["child"].parent_id == by_name["root"].span_id

    def test_render_tree_indents_children(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        text = render_tree(tracer.finished())
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert lines[1].startswith("  b")


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 2.5)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["sum"] == 4.0
        assert (hist["min"], hist["max"]) == (1.0, 3.0)

    def test_merge_semantics(self):
        a = MetricsRegistry()
        a.inc("c", 2)
        a.set_gauge("g", 1.0)
        a.observe("h", 1.0)
        b = MetricsRegistry()
        b.inc("c", 3)
        b.set_gauge("g", 9.0)
        b.observe("h", 5.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5  # counters add
        assert snap["gauges"]["g"] == 9.0  # gauges: last write wins
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2
        assert (hist["min"], hist["max"]) == (1.0, 5.0)

    def test_histogram_data_merge_dict(self):
        h = HistogramData()
        h.observe(2.0)
        h.merge_dict({"count": 3, "sum": 9.0, "min": 1.0, "max": 4.0})
        assert h.count == 4
        assert h.total == 11.0
        assert (h.min, h.max) == (1.0, 4.0)

    def test_cache_hit_ratio(self):
        assert cache_hit_ratio({"counters": {}}) is None
        snap = {"counters": {"cache.hits": 3, "cache.misses": 1}}
        assert cache_hit_ratio(snap) == pytest.approx(0.75)


# ----------------------------------------------------------------------
# disabled mode is a true no-op
# ----------------------------------------------------------------------
class TestDisabledNoOp:
    def test_hooks_degrade_to_nothing(self):
        assert telemetry.active() is None
        assert telemetry.span("x") is telemetry.NULL_SPAN
        assert telemetry.current_span() is None
        assert telemetry.sse_profiler() is None
        telemetry.counter_inc("c")
        telemetry.gauge_set("g", 1.0)
        telemetry.observe("h", 1.0)  # all silently dropped
        with telemetry.span("x") as sp:
            assert sp.set(a=1) is sp

    def test_sse_results_identical_disabled_vs_enabled(self):
        prog = _prog()
        stimuli = default_stimuli(prog, seed=7)
        options = SimulationOptions(steps=200)
        baseline = run_sse(prog, stimuli, options)
        with telemetry.capture(profile_sse=True, sample_interval=1):
            traced = run_sse(prog, stimuli, options)
        again = run_sse(prog, stimuli, options)
        for other in (traced, again):
            assert other.checksums == baseline.checksums
            assert other.outputs == baseline.outputs
            assert other.steps_run == baseline.steps_run
            assert [str(e) for e in other.diagnostics] == [
                str(e) for e in baseline.diagnostics
            ]

    @requires_cc
    def test_accmos_results_identical_disabled_vs_enabled(self, tmp_path):
        from repro.engines.accmos import run_accmos

        prog = _prog()
        stimuli = default_stimuli(prog, seed=7)
        options = SimulationOptions(steps=200)
        cache = ArtifactCache(tmp_path / "cache")
        baseline = run_accmos(prog, stimuli, options, cache=cache)
        with telemetry.capture():
            traced = run_accmos(prog, stimuli, options, cache=cache)
        assert traced.checksums == baseline.checksums
        assert traced.outputs == baseline.outputs


# ----------------------------------------------------------------------
# pipeline spans
# ----------------------------------------------------------------------
class TestPipelineSpans:
    def test_preprocess_and_sse_spans(self):
        with telemetry.capture() as session:
            prog = _prog()
            run_sse(
                prog, default_stimuli(prog, seed=1),
                SimulationOptions(steps=50),
            )
        names = [s.name for s in session.tracer.finished()]
        assert "preprocess" in names
        assert "sse.run" in names
        snap = session.metrics.snapshot()
        assert snap["counters"]["engine.sse.runs"] == 1
        assert snap["counters"]["engine.sse.steps"] == 50
        assert "engine.sse.steps_per_sec" in snap["histograms"]

    @requires_cc
    def test_accmos_span_tree(self, tmp_path):
        from repro.engines.accmos import run_accmos

        with telemetry.capture() as session:
            prog = _prog()
            run_accmos(
                prog, default_stimuli(prog, seed=1),
                SimulationOptions(steps=50),
                cache=ArtifactCache(tmp_path / "cache"),
            )
        spans = session.tracer.finished()
        by_name = {s.name: s for s in spans}
        run = by_name["accmos.run"]
        for phase in ("instrument", "codegen", "compile", "execute", "parse"):
            assert by_name[phase].parent_id == run.span_id, phase
        assert by_name["gcc"].parent_id == by_name["compile"].span_id
        snap = session.metrics.snapshot()
        assert snap["counters"]["cache.misses"] == 1

    def test_thread_pool_spans_nest_under_dispatch(self):
        prog = _prog()
        jobs = [
            SimulationJob(prog=prog, seed=s, engine="sse",
                          options=SimulationOptions(steps=20))
            for s in (1, 2, 3)
        ]
        with telemetry.capture() as session:
            results = run_jobs(jobs, workers=2, mode="thread", cache=False)
        assert all(r.ok for r in results)
        spans = session.tracer.finished()
        pool = [s for s in spans if s.name == "runner.run_jobs"][0]
        job_spans = [s for s in spans if s.name == "runner.job"]
        assert len(job_spans) == 3
        assert all(s.parent_id == pool.span_id for s in job_spans)
        job_ids = {s.span_id for s in job_spans}
        sse_spans = [s for s in spans if s.name == "sse.run"]
        assert all(s.parent_id in job_ids for s in sse_spans)

    def test_process_pool_spans_and_metrics_come_home(self):
        prog = _prog()
        jobs = [
            SimulationJob(prog=prog, seed=s, engine="sse",
                          options=SimulationOptions(steps=20))
            for s in (1, 2)
        ]
        with telemetry.capture() as session:
            results = run_jobs(jobs, workers=2, mode="process", cache=False)
        assert all(r.ok for r in results)
        assert all(r.telemetry is None for r in results)  # folded
        spans = session.tracer.finished()
        pool = [s for s in spans if s.name == "runner.run_jobs"][0]
        job_spans = [s for s in spans if s.name == "runner.job"]
        assert len(job_spans) == 2
        assert all(s.parent_id == pool.span_id for s in job_spans)
        assert all(s.pid != pool.pid for s in job_spans)  # worker processes
        snap = session.metrics.snapshot()
        assert snap["counters"]["engine.sse.runs"] == 2
        assert snap["counters"]["runner.jobs.ok"] == 2

    @requires_cc
    def test_process_pool_cache_stats_fold_into_parent(self, tmp_path):
        prog = _prog()
        cache = ArtifactCache(tmp_path / "cache")
        jobs = [
            SimulationJob(prog=prog, seed=s,
                          options=SimulationOptions(steps=20))
            for s in (1, 2)
        ]
        results = run_jobs(jobs, workers=2, mode="process", cache=cache)
        assert all(r.ok for r in results)
        assert all(r.cache_stats is not None for r in results)
        stats = cache.stats()
        # Without the fold the parent handle would report 0/0: the
        # workers' hits/misses happened on per-process handles.
        assert stats.hits + stats.misses == 2


# ----------------------------------------------------------------------
# profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_table_orders_hottest_first_and_merges(self):
        p = SseProfiler(1)
        p.add_run({"Gain": 0.3, "Sum": 0.7}, {"Gain": 3, "Sum": 7}, 10)
        q = SseProfiler(1)
        q.add_run({"Sum": 0.3}, {"Sum": 3}, 5)
        p.merge(q.snapshot())
        table = p.table()
        assert [row[0] for row in table] == ["Sum", "Gain"]
        sum_row = table[0]
        assert sum_row[1] == 10  # calls
        assert sum_row[2] == pytest.approx(1.0)  # seconds
        assert sum_row[3] == pytest.approx(1.0 / 1.3)  # share
        assert "Sum" in p.render()

    def test_sse_run_populates_hot_actor_table(self):
        prog = _prog()
        with telemetry.capture(profile_sse=True, sample_interval=1) as session:
            run_sse(
                prog, default_stimuli(prog, seed=1),
                SimulationOptions(steps=30),
            )
        table = session.profiler.table()
        assert table, "sampling every step must attribute some time"
        block_types = {row[0] for row in table}
        assert "Accumulator" in block_types
        assert session.profiler.snapshot()["sampled_steps"] == 30


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _traced_session(self):
        with telemetry.capture() as session:
            prog = _prog()
            run_sse(
                prog, default_stimuli(prog, seed=1),
                SimulationOptions(steps=25),
            )
        return session

    def test_chrome_trace_round_trips_through_json(self, tmp_path):
        session = self._traced_session()
        spans = session.tracer.finished()
        target = tmp_path / "t.json"
        n = telemetry.write_chrome_trace(spans, target)
        assert n == len(spans)
        trace = json.loads(target.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert {e["name"] for e in events} == {s.name for s in spans}
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            assert isinstance(event["ts"], float)
            assert "span_id" in event["args"]

    def test_spans_jsonl_round_trip(self, tmp_path):
        session = self._traced_session()
        spans = session.tracer.finished()
        target = tmp_path / "spans.jsonl"
        telemetry.write_spans_jsonl(spans, target)
        lines = target.read_text().splitlines()
        assert len(lines) == len(spans)
        decoded = [json.loads(line) for line in lines]
        assert {d["name"] for d in decoded} == {s.name for s in spans}

    def test_metrics_text_and_persistence(self, tmp_path):
        session = self._traced_session()
        snap = session.snapshot()
        text = telemetry.metrics_to_text(snap)
        assert "engine.sse.runs" in text
        target = tmp_path / "metrics.json"
        assert telemetry.save_metrics(snap, target) == target
        assert telemetry.load_metrics(target) == json.loads(
            json.dumps(snap)
        )
        assert telemetry.load_metrics(tmp_path / "missing.json") is None


# ----------------------------------------------------------------------
# campaign timings
# ----------------------------------------------------------------------
class TestCampaignTimings:
    def test_cases_carry_phase_timings(self):
        from repro.campaign import run_campaign

        outcome = run_campaign(
            _prog(), engine="sse", steps=30, max_cases=3,
            plateau_patience=5, cache=False,
        )
        assert outcome.cases
        for case in outcome.cases:
            assert case.timings["execute"] > 0
            assert case.cache_hit is False


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture()
    def model_file(self, tmp_path):
        from repro.slx import save_model

        b = ModelBuilder("TeleCli")
        x = b.inport("X", dtype=I32)
        acc = b.accumulator("Acc", x, dtype=I32)
        b.outport("Y", acc)
        path = tmp_path / "tele.xml"
        save_model(b.build(), str(path))
        return str(path)

    @pytest.fixture()
    def metrics_file(self, tmp_path, monkeypatch):
        target = tmp_path / "metrics.json"
        monkeypatch.setenv("ACCMOS_METRICS_FILE", str(target))
        return target

    def test_simulate_trace_flag(self, model_file, tmp_path, metrics_file,
                                 capsys):
        from repro.cli import main

        trace_file = tmp_path / "t.json"
        rc = main(["simulate", model_file, "--engine", "sse",
                   "--steps", "25", "--trace", str(trace_file)])
        assert rc == 0
        trace = json.loads(trace_file.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"preprocess", "sse.run"} <= names
        assert metrics_file.exists()
        assert telemetry.active() is None  # CLI disabled it again

    def test_metrics_show_and_clear(self, model_file, tmp_path, metrics_file,
                                    capsys):
        from repro.cli import main

        assert main(["metrics"]) == 1  # nothing recorded yet
        capsys.readouterr()
        main(["simulate", model_file, "--engine", "sse", "--steps", "10",
              "--trace", str(tmp_path / "t.json")])
        capsys.readouterr()
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "engine.sse.runs" in out
        assert main(["metrics", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["engine.sse.runs"] == 1
        assert main(["metrics", "clear"]) == 0
        assert not metrics_file.exists()
        assert main(["metrics"]) == 1

    def test_trace_command_prints_span_tree(self, model_file, tmp_path,
                                            metrics_file, capsys):
        from repro.cli import main

        trace_file = tmp_path / "t.json"
        rc = main(["trace", model_file, "--engine", "sse", "--steps", "25",
                   "-o", str(trace_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sse.run" in out
        assert "preprocess" in out
        assert trace_file.exists()

    def test_campaign_timings_flag(self, model_file, capsys):
        from repro.cli import main

        rc = main(["campaign", model_file, "--engine", "sse",
                   "--steps", "20", "--cases", "2", "--patience", "5",
                   "--timings"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-phase timings" in out
        assert "execute" in out

"""Streaming work-conserving campaign scheduler.

Pins the three invariants :mod:`repro.runner.scheduler` promises:

* **Seed-order delivery** — the reorder buffer turns *any* completion
  order back into submission order (hypothesis property), so streaming
  campaigns fold exactly like serial ones;
* **Byte-identity** — streaming vs wave loop vs serial across the model
  zoo and every dispatch mode (spawn / serve / inproc / inproc-threads):
  merged bitmaps, per-case new points, diagnostic attribution, coverage
  curves, saturation verdict all equal;
* **Bounded, counted speculation** — a mid-stream saturation stops
  submission immediately; the waste is reported in
  ``CampaignOutcome.speculated_cases`` and is strictly below the wave
  loop's for the same fleet.

Plus the satellite pieces: the throughput controller's hill-climb /
hysteresis behavior, ``CaseCostModel`` base-term recalibration from
small cases, and the persistent per-(engine, compile key)
:class:`CostModelStore` with warm-start.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks import build_benchmark
from repro.campaign import run_campaign
from repro.codegen.driver import supports_shared_objects
from repro.engines.base import SimulationOptions
from repro.model.errors import SimulationError
from repro.runner.cache import ArtifactCache
from repro.runner.costmodel import (
    FLAP_PENALTY,
    CaseCostModel,
    CostModelStore,
    cost_key,
    default_cost_model,
    makespan,
    pack_shards,
    plan_chunks,
    set_default_cost_store,
)
from repro.runner.jobs import SimulationJob
from repro.runner.pool import run_jobs
from repro.runner.scheduler import (
    ReorderBuffer,
    StreamScheduler,
    ThroughputController,
    run_jobs_streaming,
)
from repro.schedule import preprocess

from conftest import HAS_CC, requires_cc
from test_runner_campaign import _assert_outcomes_identical

requires_shared = pytest.mark.skipif(
    not HAS_CC or supports_shared_objects() is not True,
    reason="toolchain cannot build loadable shared objects",
)


@pytest.fixture(autouse=True)
def _isolated_cost_store(tmp_path):
    """Campaigns observe into (and persist) the process-wide cost store;
    point it at a throwaway file so tests neither read nor pollute the
    user's cache directory."""
    previous = set_default_cost_store(CostModelStore(tmp_path / "cm.json"))
    yield
    set_default_cost_store(previous)


# ----------------------------------------------------------------------
# reorder buffer
# ----------------------------------------------------------------------
class TestReorderBuffer:
    def test_in_order_passthrough(self):
        buf = ReorderBuffer()
        for i in range(5):
            released = buf.push(i, f"r{i}")
            assert released == [(i, f"r{i}")]
        assert buf.depth == 0 and buf.max_depth == 1

    def test_out_of_order_held_until_frontier(self):
        buf = ReorderBuffer()
        assert buf.push(2, "c") == []
        assert buf.push(1, "b") == []
        assert buf.depth == 2
        assert buf.push(0, "a") == [(0, "a"), (1, "b"), (2, "c")]
        assert buf.depth == 0
        assert buf.max_depth == 3
        assert buf.next_index == 3

    def test_duplicate_push_rejected(self):
        buf = ReorderBuffer()
        buf.push(1, "x")
        with pytest.raises(ValueError, match="pushed twice"):
            buf.push(1, "y")

    def test_stale_push_below_frontier_distinct_message(self):
        """A released index is *stale*, not duplicated: the error names
        the frontier so service users can tell the two apart."""
        buf = ReorderBuffer()
        buf.push(1, "x")
        buf.push(0, "a")  # releases 0 and 1; frontier is now 2
        with pytest.raises(ValueError, match=r"below the frontier 2"):
            buf.push(0, "again")
        with pytest.raises(ValueError, match="already released"):
            buf.push(1, "again")
        # A genuine duplicate still reads "pushed twice".
        buf.push(3, "held")
        with pytest.raises(ValueError, match="pushed twice"):
            buf.push(3, "held-dup")

    @given(st.permutations(list(range(12))))
    @settings(max_examples=60, deadline=None)
    def test_any_completion_order_releases_seed_order(self, order):
        """The property the byte-identity contract rests on: whatever
        order results complete in, the consumer sees submission order,
        and every release is the contiguous frontier run."""
        buf = ReorderBuffer()
        delivered = []
        for index in order:
            released = buf.push(index, index)
            if released:
                assert released[0][0] == len(delivered)
            delivered.extend(item for _, item in released)
            assert delivered == list(range(len(delivered)))
        assert delivered == list(range(len(order)))
        assert buf.depth == 0


# ----------------------------------------------------------------------
# throughput controller
# ----------------------------------------------------------------------
class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestThroughputController:
    def _drive_epoch(self, ctl, clock, *, folded, seconds, busy):
        """Advance one epoch: `folded` more cases over `seconds`."""
        clock.now += seconds
        ctl.on_fold(folded, busy)

    def test_fixed_knobs_never_touched(self):
        clock = _Clock()
        ctl = ThroughputController(
            batch_size=4, window=8, workers=2,
            tune_batch=False, tune_window=False,
            epoch_cases=2, clock=clock,
        )
        folded, busy = 0, 0.0
        for _ in range(20):
            folded += 2
            busy += 0.1
            self._drive_epoch(ctl, clock, folded=folded, seconds=1.0, busy=busy)
        assert (ctl.batch_size, ctl.window) == (4, 8)
        assert ctl.window_adjustments == ctl.batch_adjustments == 0

    def test_short_campaign_finishes_before_first_adjustment(self):
        """The default epoch is big enough that small deterministic runs
        (the test suite's campaigns) never see a knob move."""
        clock = _Clock()
        ctl = ThroughputController(
            batch_size=4, window=8, workers=4, clock=clock
        )
        for folded in range(1, 9):  # an 8-case campaign
            clock.now += 0.01
            ctl.on_fold(folded, busy_seconds=0.0)
        assert (ctl.batch_size, ctl.window) == (4, 8)
        assert ctl.window_adjustments == ctl.batch_adjustments == 0

    def test_low_utilization_grows_window(self):
        clock = _Clock()
        ctl = ThroughputController(
            batch_size=1, window=4, workers=4,
            tune_batch=False, tune_window=True,
            epoch_cases=2, clock=clock,
        )
        folded = 0
        for _ in range(3):
            folded += 2
            # busy stays 0: workers are starving for in-flight work.
            self._drive_epoch(ctl, clock, folded=folded, seconds=1.0, busy=0.0)
        assert ctl.window > 4
        assert ctl.window_adjustments >= 1

    def test_regressing_change_reverted_and_direction_flipped(self):
        clock = _Clock()
        ctl = ThroughputController(
            batch_size=1, window=8, workers=2,
            tune_batch=False, tune_window=True,
            epoch_cases=2, hysteresis=0.1, clock=clock,
        )
        folded, busy = 0, 0.0

        # Epoch 1 establishes the baseline; utilization is kept at 1.0
        # so the idle-workers branch never fires and the round-robin
        # climb proposes a window step.
        folded += 2
        busy += 2.0
        self._drive_epoch(ctl, clock, folded=folded, seconds=1.0, busy=busy)
        # Epoch 2: good throughput; a window change is proposed.
        folded += 2
        busy += 2.0
        self._drive_epoch(ctl, clock, folded=folded, seconds=1.0, busy=busy)
        changed = ctl.window
        assert changed != 8 and ctl.window_adjustments == 1

        # Epoch 3: throughput collapses (same cases over 10x the time):
        # the pending change is reverted and the search direction flips.
        folded += 2
        busy += 20.0
        self._drive_epoch(ctl, clock, folded=folded, seconds=10.0, busy=busy)
        assert ctl.window == 8
        assert ctl.reverts == 1

    def test_batch_stays_inside_bounds(self):
        clock = _Clock()
        ctl = ThroughputController(
            batch_size=2, window=64, workers=1,
            tune_batch=True, tune_window=False,
            epoch_cases=1, min_batch=1, max_batch=8, clock=clock,
        )
        folded, busy = 0, 0.0
        for _ in range(50):
            folded += 1
            busy += 1.0  # full utilization, improving throughput
            self._drive_epoch(ctl, clock, folded=folded, seconds=1.0, busy=busy)
            assert 1 <= ctl.batch_size <= 8


# ----------------------------------------------------------------------
# cost model: base recalibration + persistent store
# ----------------------------------------------------------------------
class TestCostModelBase:
    def test_base_recalibrates_from_small_cases(self):
        """Tiny cases are dominated by per-case freight; observing them
        must fit the base term, not poison the rate."""
        true_base, true_rate = 0.01, 1e-6
        model = CaseCostModel(small_units=4096)
        for _ in range(60):
            model.observe(50, 2, true_base + 100 * true_rate)  # small
            model.observe(1_000_000, 1, true_base + 1e6 * true_rate)  # large
        assert model.base_seconds == pytest.approx(true_base, rel=0.3)
        assert model.rate_seconds == pytest.approx(true_rate, rel=0.3)
        # And predictions converge at both ends of the size spectrum.
        assert model.predict(50, 2) == pytest.approx(
            true_base + 100 * true_rate, rel=0.3
        )
        assert model.predict(1_000_000, 1) == pytest.approx(
            true_base + 1e6 * true_rate, rel=0.3
        )

    def test_tiny_only_corpus_does_not_over_predict(self):
        """Before base recalibration, a corpus of sub-millisecond cases
        kept the cold 2e-4 base forever; now the base converges onto the
        observed per-case cost."""
        model = CaseCostModel()
        for _ in range(30):
            model.observe(10, 4, 5e-5)
        assert model.predict(10, 4) == pytest.approx(5e-5, rel=0.5)

    def test_nonpositive_observation_ignored(self):
        model = CaseCostModel()
        model.observe(10, 4, 0.0)
        model.observe(10, 4, -1.0)
        assert model.observations == 0 and model.base_observations == 0

    def test_penalty_multiplies_predictions_and_ratchets(self):
        model = CaseCostModel()
        baseline = model.predict(1000, 10)
        model.set_penalty(4.0)
        assert model.predict(1000, 10) == pytest.approx(baseline * 4.0)
        # Ratchet: a smaller multiplier never undoes a larger one.
        model.set_penalty(2.0)
        assert model.predict(1000, 10) == pytest.approx(baseline * 4.0)
        model.set_penalty(8.0)
        assert model.predict(1000, 10) == pytest.approx(baseline * 8.0)
        with pytest.raises(ValueError, match=">= 1.0"):
            model.set_penalty(0.5)

    def test_penalty_is_runtime_only(self, tmp_path):
        """Flapping is a condition of *this* process's servers; the
        demotion must not poison future campaigns through persistence."""
        path = tmp_path / "cm.json"
        store = CostModelStore(path)
        store.observe("k", 100_000, 10, 0.5)
        store.penalize("k")
        assert store.generation == 1
        assert store.save() == path
        fresh = CostModelStore(path)
        assert fresh.model("k").penalty == 1.0
        assert fresh.generation == 0
        assert fresh.predict("k", 100_000, 10) < store.predict(
            "k", 100_000, 10
        )


class TestCostModelStore:
    def test_persist_and_warm_start(self, tmp_path):
        path = tmp_path / "costmodel.json"
        store = CostModelStore(path)
        store.observe("accmos:SPV:a88", 100_000, 88, 0.5)
        store.observe("accmos:SPV:a88", 100_000, 88, 0.5)
        learned = store.model("accmos:SPV:a88")
        assert store.save() == path

        fresh = CostModelStore(path)
        warm = fresh.model("accmos:SPV:a88")
        assert warm.rate_seconds == pytest.approx(learned.rate_seconds)
        assert warm.base_seconds == pytest.approx(learned.base_seconds)
        assert warm.observations == learned.observations
        # Warm-started models EMA-blend new observations instead of
        # hard-resetting the rate like a cold first observation would.
        before = warm.rate_seconds
        warm.observe(100_000, 88, 5.0)
        assert warm.rate_seconds != pytest.approx(before)
        assert warm.rate_seconds < 5.0 / (100_000 * 88) + before

    def test_unobserved_models_not_persisted(self, tmp_path):
        store = CostModelStore(tmp_path / "cm.json")
        store.model("cold-key")  # predicted from, never observed
        assert store.save() is None
        assert not (tmp_path / "cm.json").exists()

    def test_corrupt_file_tolerated(self, tmp_path):
        path = tmp_path / "cm.json"
        path.write_text("{not json")
        store = CostModelStore(path)
        assert store.keys() == []
        store.observe("k", 10_000, 10, 0.1)
        assert store.save() == path
        assert "k" in json.loads(path.read_text())["models"]

    def test_save_merges_with_concurrent_writer(self, tmp_path):
        path = tmp_path / "cm.json"
        a, b = CostModelStore(path), CostModelStore(path)
        a.observe("key-a", 10_000, 10, 0.1)
        b.observe("key-b", 10_000, 10, 0.2)
        a.save()
        b.save()
        models = json.loads(path.read_text())["models"]
        assert set(models) == {"key-a", "key-b"}

    def test_cost_key_stable_across_instances(self):
        prog_a = preprocess(build_benchmark("SPV"))
        prog_b = preprocess(build_benchmark("SPV"))
        opts = SimulationOptions(steps=100)
        assert cost_key("accmos", prog_a, opts) == cost_key(
            "accmos", prog_b, opts
        )
        # Steps are per-case, not structural: same compiled unit.
        assert cost_key("accmos", prog_a, SimulationOptions(steps=999)) == (
            cost_key("accmos", prog_a, opts)
        )
        # Structural options change the compiled unit and the key.
        assert cost_key(
            "accmos", prog_a, SimulationOptions(steps=100, coverage=False)
        ) != cost_key("accmos", prog_a, opts)
        assert cost_key("sse", prog_a, opts) != cost_key("accmos", prog_a, opts)

    def test_default_cost_model_is_store_backed_singleton(self):
        assert default_cost_model() is default_cost_model()


# ----------------------------------------------------------------------
# cost-packed chunk forming (ROADMAP leftover: greedy arrival packing)
# ----------------------------------------------------------------------
def _greedy_arrival(n: int, size: int) -> "list[list[int]]":
    """The old chunk former: consecutive runs of ``size`` arrivals."""
    return [list(range(i, min(i + size, n))) for i in range(0, n, size)]


def _worker_makespan(chunks, costs, workers: int) -> float:
    """Wall-clock of dispatching ``chunks``, in order, onto the least-
    loaded of ``workers`` pooled slots — one chunk occupies one slot."""
    loads = [0.0] * workers
    for chunk in chunks:
        slot = loads.index(min(loads))
        loads[slot] += sum(costs[i] for i in chunk)
    return max(loads)


class TestPlanChunks:
    def test_skewed_corpus_beats_greedy_arrival(self):
        """The regression claim from the issue: on a skewed-cost corpus
        the cost packer's predicted worker makespan is never worse than
        greedy-by-arrival chunking — and strictly better when the
        arrival order clusters the expensive tail."""
        workers, size = 3, 4
        for costs in (
            [8.0, 8.0, 8.0] + [1.0] * 9,  # longs arrive first
            [1.0] * 9 + [8.0, 8.0, 8.0],  # longs arrive last
            [8.0, 1.0, 8.0, 1.0, 8.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        ):
            planned = plan_chunks(costs, workers, size)
            greedy = _greedy_arrival(len(costs), size)
            assert _worker_makespan(planned, costs, workers) <= (
                _worker_makespan(greedy, costs, workers)
            )
        # The clustered cases are the motivating ones: greedy arrival
        # rides all three longs on one worker (makespan 25); packing
        # spreads them (makespan 11).
        clustered = [8.0, 8.0, 8.0] + [1.0] * 9
        assert _worker_makespan(
            plan_chunks(clustered, workers, size), clustered, workers
        ) < _worker_makespan(
            _greedy_arrival(12, size), clustered, workers
        )

    def test_partition_is_exact_capped_and_frontier_first(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0]
        chunks = plan_chunks(costs, 2, 3)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(10))
        assert all(len(chunk) <= 3 for chunk in chunks)
        assert chunks[0][0] == 0  # the frontier chunk comes first
        assert [c[0] for c in chunks] == sorted(c[0] for c in chunks)
        # Deterministic: equal inputs, equal partition.
        assert chunks == plan_chunks(costs, 2, 3)

    def test_infeasible_cap_rejected(self):
        with pytest.raises(ValueError, match="cannot hold"):
            pack_shards([1.0, 1.0, 1.0], 2, max_size=1)
        with pytest.raises(ValueError, match="max_size"):
            plan_chunks([1.0, 1.0], 2, 0)
        # plan_chunks raises the chunk count instead of failing.
        chunks = plan_chunks([1.0] * 7, 2, 2)
        assert all(len(chunk) <= 2 for chunk in chunks)
        assert sorted(i for c in chunks for i in c) == list(range(7))

    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=10.0),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=120, deadline=None)
    def test_never_worse_than_round_robin_chunking(
        self, costs, n_chunks, max_size
    ):
        """The by-construction guarantee packing inherits from
        pack_shards: the planned partition never predicts a worse
        makespan than round-robin dealing into the same chunk count."""
        n = len(costs)
        chunks = plan_chunks(costs, n_chunks, max_size)
        assert sorted(i for c in chunks for i in c) == list(range(n))
        assert all(len(chunk) <= max_size for chunk in chunks)
        effective = min(max(n_chunks, -(-n // max_size)), n)
        rr = [list(range(slot, n, effective)) for slot in range(effective)]
        assert makespan(chunks, costs) <= makespan(rr, costs) * (1 + 1e-9)


# ----------------------------------------------------------------------
# streaming dispatch: pool-level identity (no compiler needed)
# ----------------------------------------------------------------------
class TestRunJobsStreaming:
    def _jobs(self, n=10):
        prog = preprocess(build_benchmark("SPV"))
        # Varied step counts -> varied costs -> real reorder pressure.
        return [
            SimulationJob(
                prog=prog, seed=1 + i, engine="sse",
                options=SimulationOptions(steps=100 + 40 * (i % 4)),
            )
            for i in range(n)
        ]

    def test_matches_barrier_dispatch(self):
        jobs = self._jobs()
        reference = run_jobs(jobs, workers=1)
        stats: dict = {}
        streamed = run_jobs_streaming(
            jobs, workers=4, batch_size=3, window=5, stats_sink=stats
        )
        assert [r.seed for r in streamed] == [r.seed for r in reference]
        for ref, got in zip(reference, streamed):
            assert got.ok and ref.ok
            assert got.result.checksums == ref.result.checksums
            assert got.result.coverage.bitmaps == ref.result.coverage.bitmaps
        assert stats["submitted"] == stats["folded"] == len(jobs)
        assert stats["speculated"] == 0
        assert stats["max_in_flight"] <= 5

    def test_pool_streaming_flag_routes_here(self):
        jobs = self._jobs(6)
        reference = run_jobs(jobs, workers=1)
        streamed = run_jobs(jobs, workers=3, streaming=True, window=4)
        for ref, got in zip(reference, streamed):
            assert got.result.checksums == ref.result.checksums

    def test_failures_reported_not_raised(self, monkeypatch):
        import repro.runner.jobs as jobs_mod

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(jobs_mod, "_run_once", boom)
        results = run_jobs_streaming(self._jobs(4), workers=2)
        assert [r.ok for r in results] == [False] * 4
        assert all("engine exploded" in r.error for r in results)


# ----------------------------------------------------------------------
# scheduler-level cost packing + flap-driven re-classification
# ----------------------------------------------------------------------
class TestCostAwareScheduling:
    def test_flap_penalty_reroutes_cases_to_long_slots(self):
        """A penalized cost key's cases re-classify as long mid-run (the
        generation watch), route through the capped long slots, and
        still deliver in seed order."""
        store = CostModelStore(None)
        spv = preprocess(build_benchmark("SPV"))
        rac = preprocess(build_benchmark("RAC"))
        opts = SimulationOptions(steps=100)
        progs = [spv, spv, spv, rac, spv, spv, spv, rac]
        jobs = [
            SimulationJob(prog=prog, seed=1 + i, engine="sse", options=opts)
            for i, prog in enumerate(progs)
        ]
        # Pin both keys to identical coefficients so the *only* cost
        # difference in play is the flap penalty (actor counts differ
        # between the two models and would otherwise skew predictions).
        for prog in (spv, rac):
            model = store.model(cost_key("sse", prog, opts))
            model.base_seconds = 1e-3
            model.rate_seconds = 0.0
        scheduler = StreamScheduler(
            jobs, workers=4, window=4, cost_store=store
        )
        # Equal predictions: nothing classifies long.
        assert not any(scheduler._is_long)

        # The warm-server pool reports RAC's artifact flapping: its key
        # is demoted far past the long-classification ratio.
        store.penalize(cost_key("sse", rac, opts), 100.0)
        scheduler._refresh_costs()
        for index, prog in enumerate(progs):
            assert scheduler._is_long[index] == (prog is rac)

        try:
            seeds = [r.seed for r in scheduler.results()]
        finally:
            stats = scheduler.finish()
        assert seeds == list(range(1, 9))
        assert stats["long_chunks"] == 2
        assert stats["folded"] == 8

    def test_refresh_drops_stale_chunk_plans(self):
        """A generation bump invalidates cost-packed plans built from
        the old predictions."""
        store = CostModelStore(None)
        prog = preprocess(build_benchmark("SPV"))
        jobs = [
            SimulationJob(
                prog=prog, seed=1 + i, engine="sse",
                options=SimulationOptions(steps=100),
            )
            for i in range(4)
        ]
        scheduler = StreamScheduler(jobs, workers=2, cost_store=store)
        scheduler._planned_chunks[2] = [2, 3]
        store.penalize(cost_key("sse", prog, SimulationOptions(steps=100)))
        scheduler._refresh_costs()
        assert scheduler._planned_chunks == {}
        try:
            seeds = [r.seed for r in scheduler.results()]
        finally:
            scheduler.finish()
        assert seeds == [1, 2, 3, 4]


@requires_cc
def test_cost_packed_chunks_preserve_identity(tmp_path):
    """Pooled accmos chunks are cost-packed when predictions vary inside
    a compile-key group: chunk membership changes, per-case results and
    delivery order do not, and the stats dict counts the packed chunks."""
    cache = ArtifactCache(tmp_path / "cache")
    prog = preprocess(build_benchmark("SPV"))
    jobs = [
        SimulationJob(
            prog=prog, seed=1 + i, engine="accmos",
            options=SimulationOptions(steps=100 + 500 * (i % 3)),
        )
        for i in range(9)
    ]
    reference = run_jobs(jobs, workers=1, cache=cache)
    stats: dict = {}
    streamed = run_jobs_streaming(
        jobs, workers=3, batch_size=3, cache=cache, stats_sink=stats
    )
    assert [r.seed for r in streamed] == [r.seed for r in reference]
    for ref, got in zip(reference, streamed):
        assert got.ok and ref.ok
        assert got.result.checksums == ref.result.checksums
        assert got.result.coverage.bitmaps == ref.result.coverage.bitmaps
    # Predicted costs vary with steps, so the chunk former cost-packs.
    assert stats["cost_packed_chunks"] >= 1
    assert stats["folded"] == len(jobs)


# ----------------------------------------------------------------------
# campaign identity: streaming vs wave vs serial, all modes
# ----------------------------------------------------------------------
def _campaign_kwargs(mode: str) -> dict:
    """Streaming-fleet knobs for each dispatch mode under test."""
    if mode == "spawn":
        return dict(workers=3, batch_size=2, serve=False, threads=1)
    if mode == "serve":
        return dict(workers=3, batch_size=2, serve=True, threads=1)
    if mode == "inproc":
        return dict(workers=3, batch_size=2, inproc=True, threads=1)
    if mode == "inproc-threads":
        return dict(threads=3)
    raise AssertionError(mode)


ALL_MODES = ["spawn", "serve", "inproc", "inproc-threads"]


@requires_cc
@pytest.mark.parametrize("mode", ALL_MODES)
@pytest.mark.parametrize("name", ["SPV", "RAC", "CSEV"])
def test_streaming_identical_to_wave_and_serial(name, mode, tmp_path):
    """The acceptance criterion: streaming == wave loop == serial, for
    every dispatch mode, on the benchmark zoo — merged bitmaps,
    per-case new points, diagnostics, curves, saturation verdict."""
    if mode in ("inproc", "inproc-threads") and supports_shared_objects() is not True:
        pytest.skip("toolchain cannot build loadable shared objects")
    cache = ArtifactCache(tmp_path / "cache")
    prog = preprocess(build_benchmark(name))
    kwargs = dict(steps=300, max_cases=6, plateau_patience=100, cache=cache)

    serial = run_campaign(
        prog, workers=1, batch_size=1, serve=False, threads=1,
        scheduler="wave", **kwargs,
    )
    wave = run_campaign(
        prog, scheduler="wave", **_campaign_kwargs(mode), **kwargs
    )
    stream = run_campaign(
        prog, scheduler="stream", **_campaign_kwargs(mode), **kwargs
    )
    assert stream.n_cases == wave.n_cases == serial.n_cases == 6
    _assert_outcomes_identical(serial, wave)
    _assert_outcomes_identical(serial, stream)
    assert stream.scheduler_stats is not None
    assert stream.scheduler_stats["folded"] == 6


@requires_cc
def test_mid_stream_saturation_cutoff(tmp_path):
    """Saturation lands mid-stream: the scheduler stops submitting at
    once, the outcome equals the serial verdict, and the discarded
    speculation is counted, bounded by what was in flight."""
    cache = ArtifactCache(tmp_path / "cache")
    prog = preprocess(build_benchmark("SPV"))
    kwargs = dict(steps=2000, max_cases=12, plateau_patience=3, cache=cache)

    serial = run_campaign(
        prog, workers=1, batch_size=1, serve=False, threads=1,
        scheduler="wave", **kwargs,
    )
    assert serial.saturated and serial.n_cases < 12
    assert serial.speculated_cases == 0

    stream = run_campaign(
        prog, workers=2, batch_size=1, window=2, serve=False, threads=1,
        **kwargs,
    )
    _assert_outcomes_identical(serial, stream)
    stats = stream.scheduler_stats
    # Never submitted past the window once saturation folded...
    assert stream.speculated_cases <= 2
    assert stats["speculated"] == stream.speculated_cases
    # ...and never got anywhere near the case budget.
    assert stats["submitted"] <= serial.n_cases + 2


@requires_cc
def test_streaming_strictly_reduces_speculation(tmp_path):
    """The regression claim from the issue: for the same worker fleet,
    the wave loop burns up to a wave of speculated cases at saturation
    while the bounded-window stream discards strictly fewer."""
    cache = ArtifactCache(tmp_path / "cache")
    prog = preprocess(build_benchmark("SPV"))
    kwargs = dict(steps=2000, max_cases=12, plateau_patience=3, cache=cache)

    wave = run_campaign(
        prog, workers=2, batch_size=4, serve=False, threads=1,
        scheduler="wave", **kwargs,
    )
    stream = run_campaign(
        prog, workers=2, batch_size=1, window=2, serve=False, threads=1,
        scheduler="stream", **kwargs,
    )
    assert wave.saturated and stream.saturated
    _assert_outcomes_identical(wave, stream)
    # Wave: saturation at case 4 of an 8-seed wave discards 4; the
    # 2-deep stream window can hold at most 2 unfolded cases.
    assert wave.speculated_cases == 4
    assert stream.speculated_cases < wave.speculated_cases


@requires_shared
def test_threaded_streaming_campaign_matches_serial(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    prog = preprocess(build_benchmark("SPV"))
    kwargs = dict(steps=1000, max_cases=8, plateau_patience=100, cache=cache)
    serial = run_campaign(
        prog, workers=1, batch_size=1, serve=False, threads=1,
        scheduler="wave", **kwargs,
    )
    threaded = run_campaign(prog, threads=4, **kwargs)
    _assert_outcomes_identical(serial, threaded)
    assert threaded.scheduler_stats["mode"] == "inproc-threads"


# ----------------------------------------------------------------------
# campaign failure path: original traceback chained
# ----------------------------------------------------------------------
def test_failed_case_chains_worker_exception(monkeypatch):
    import repro.runner.jobs as jobs_mod

    original = RuntimeError("segfault in generated code")

    def boom(*args, **kwargs):
        raise original

    monkeypatch.setattr(jobs_mod, "_run_once", boom)
    prog = preprocess(build_benchmark("SPV"))
    with pytest.raises(SimulationError) as excinfo:
        run_campaign(prog, engine="sse", steps=100, max_cases=2)
    assert "seed=1" in str(excinfo.value)
    assert excinfo.value.__cause__ is original


# ----------------------------------------------------------------------
# scheduler internals: no deadlock, explicit knobs honored
# ----------------------------------------------------------------------
class TestStreamScheduler:
    def _jobs(self, n):
        prog = preprocess(build_benchmark("SPV"))
        return [
            SimulationJob(
                prog=prog, seed=1 + i, engine="sse",
                options=SimulationOptions(steps=60),
            )
            for i in range(n)
        ]

    def test_window_one_never_deadlocks(self):
        scheduler = StreamScheduler(self._jobs(5), workers=3, window=1)
        try:
            seeds = [r.seed for r in scheduler.results()]
        finally:
            stats = scheduler.finish()
        assert seeds == [1, 2, 3, 4, 5]
        assert stats["speculated"] == 0

    def test_stop_midway_counts_speculation(self):
        scheduler = StreamScheduler(
            self._jobs(8), workers=2, window=4, batch_size=1
        )
        folded = 0
        try:
            for _ in scheduler.results():
                folded += 1
                if folded == 2:
                    scheduler.stop()
                    break
        finally:
            stats = scheduler.finish()
        assert stats["folded"] == 2
        assert stats["speculated"] == stats["submitted"] - 2
        assert stats["speculated"] <= 4  # never past the window

    def test_explicit_knobs_not_tuned(self):
        scheduler = StreamScheduler(
            self._jobs(4), workers=2, window=3, batch_size=2, adaptive=True
        )
        try:
            list(scheduler.results())
        finally:
            stats = scheduler.finish()
        # Explicit window and batch: the controller must not touch them.
        assert stats["window"] == stats["initial_window"] == 3
        assert stats["batch_size"] == stats["initial_batch"] == 2

    def test_finish_is_idempotent(self):
        scheduler = StreamScheduler(self._jobs(2), workers=1)
        list(scheduler.results())
        first = scheduler.finish()
        second = scheduler.finish()
        assert first["folded"] == second["folded"] == 2

"""Parallel campaigns produce byte-identical outcomes to serial runs."""

from __future__ import annotations

import pytest

from repro.benchmarks import build_benchmark
from repro.campaign import CampaignOutcome, run_campaign
from repro.coverage import Metric
from repro.runner import ArtifactCache
from repro.schedule import preprocess

from conftest import requires_cc


def _assert_outcomes_identical(serial: CampaignOutcome, parallel: CampaignOutcome):
    assert parallel.merged.bitmaps == serial.merged.bitmaps
    assert parallel.saturated == serial.saturated
    assert [
        (c.seed, c.steps_run, c.new_points, c.n_diagnostics,
         c.new_points_by_metric)
        for c in parallel.cases
    ] == [
        (c.seed, c.steps_run, c.new_points, c.n_diagnostics,
         c.new_points_by_metric)
        for c in serial.cases
    ]
    assert [
        (e.path, e.kind.value, e.first_step, e.count, seed)
        for e, seed in parallel.diagnostics
    ] == [
        (e.path, e.kind.value, e.first_step, e.count, seed)
        for e, seed in serial.diagnostics
    ]
    for metric in Metric:
        assert parallel.coverage_curve(metric) == serial.coverage_curve(metric)


@requires_cc
class TestParallelIdentity:
    @pytest.mark.parametrize("name", ["SPV", "RAC"])
    def test_table1_model_workers4_equals_workers1(self, name, tmp_path):
        """≥8 seeds, no early stop: merged bitmaps, diagnostics with
        first-exposing seeds, and the saturation flag all match."""
        cache = ArtifactCache(tmp_path / "cache")
        prog = preprocess(build_benchmark(name))
        kwargs = dict(steps=400, max_cases=8, plateau_patience=100,
                      cache=cache)
        serial = run_campaign(prog, workers=1, **kwargs)
        parallel = run_campaign(prog, workers=4, **kwargs)
        assert serial.n_cases == parallel.n_cases == 8
        _assert_outcomes_identical(serial, parallel)
        # The stimulus-agnostic program gives every case one cache key:
        # the 16 runs across both sweeps cost exactly one gcc invocation.
        # (The exact hit count depends on auto-batching — each chunk
        # resolves the key once, not each case — so only the miss count
        # is pinned.)
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits >= 1

    @pytest.mark.parametrize("workers,batch_size,mode", [
        (1, 4, "thread"),
        (3, 4, "thread"),
        (2, 3, "process"),
    ])
    def test_batched_campaign_identical_one_compile(
        self, workers, batch_size, mode, tmp_path
    ):
        """batch_size > 1 runs many cases per process on one reused
        binary: outcomes stay byte-identical to the serial sweep, and a
        cold cache sees exactly one compiler invocation."""
        prog = preprocess(build_benchmark("SPV"))
        kwargs = dict(steps=400, max_cases=10, plateau_patience=100)
        serial = run_campaign(prog, workers=1, cache=False, **kwargs)
        cache = ArtifactCache(tmp_path / "cache")
        batched = run_campaign(
            prog, workers=workers, batch_size=batch_size, mode=mode,
            cache=cache, **kwargs,
        )
        _assert_outcomes_identical(serial, batched)
        assert cache.stats().misses == 1

    def test_saturation_parity_mid_wave(self, tmp_path):
        """Saturation landing mid-wave discards the rest of the wave."""
        cache = ArtifactCache(tmp_path / "cache")
        prog = preprocess(build_benchmark("SPV"))
        kwargs = dict(steps=2_000, max_cases=12, plateau_patience=2,
                      cache=cache)
        serial = run_campaign(prog, workers=1, **kwargs)
        parallel = run_campaign(prog, workers=5, **kwargs)
        assert serial.saturated
        assert parallel.n_cases == serial.n_cases
        _assert_outcomes_identical(serial, parallel)


class TestParallelSse:
    """The pool also drives interpreted engines (no compiler needed)."""

    def test_sse_campaign_workers_equal(self):
        prog = preprocess(build_benchmark("SPV"))
        kwargs = dict(engine="sse", steps=30, max_cases=6,
                      plateau_patience=100)
        serial = run_campaign(prog, workers=1, **kwargs)
        parallel = run_campaign(prog, workers=3, **kwargs)
        _assert_outcomes_identical(serial, parallel)

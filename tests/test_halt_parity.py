"""Halt-on-first-diagnostic parity between SSE and AccMoS.

The halt path is the subtlest cross-engine contract: both engines must
stop at the same step, having recorded the same prefix of diagnostics, no
matter how flags, custom checks, and monitors interleave within the step.
"""

from __future__ import annotations

import pytest

from repro import DiagnosticKind, SimulationOptions, simulate
from repro.diagnosis.custom import CustomDiagnosis
from repro.dtypes import I8, I32
from repro.model import ModelBuilder
from repro.schedule import preprocess
from repro.stimuli import ConstantStimulus, SequenceStimulus

from conftest import requires_cc
from helpers import assert_results_agree


def _multi_fault_prog():
    """Division by zero, wrap, and OOB all fire — at different steps."""
    b = ModelBuilder("Faults")
    x = b.inport("X", dtype=I32)
    y = b.inport("Y", dtype=I32)
    b.outport("Q", b.div("Div", x, y, dtype=I32))
    narrow = b.dtc("Narrow", b.gain("Big", x, 1000, dtype=I32), I8)
    b.outport("N", narrow)
    b.outport("L", b.direct_lookup("Lut", y, [7, 8]))
    return preprocess(b.build())


def _stimuli():
    return {
        # step 0: OOB at Lut (index 2); step 1: wrap at Narrow;
        # step 2: division by zero.
        "X": SequenceStimulus([0, 5000, 0]),
        "Y": SequenceStimulus([2, 1, 0]),
    }


@requires_cc
class TestHaltParity:
    @pytest.mark.parametrize("kind,expected_step", [
        (DiagnosticKind.WRAP_ON_OVERFLOW, 1),
        (DiagnosticKind.DIV_BY_ZERO, 2),
        (DiagnosticKind.ARRAY_OUT_OF_BOUNDS, 0),
    ])
    def test_halt_step_matches(self, kind, expected_step):
        prog = _multi_fault_prog()
        options = SimulationOptions(steps=100, halt_on=frozenset({kind}))
        sse = simulate(prog, _stimuli(), engine="sse", options=options)
        acc = simulate(prog, _stimuli(), engine="accmos", options=options)
        assert sse.halted_at == expected_step
        assert_results_agree(sse, acc)

    def test_halt_on_multiple_kinds_takes_earliest(self):
        prog = _multi_fault_prog()
        options = SimulationOptions(
            steps=100,
            halt_on=frozenset({DiagnosticKind.DIV_BY_ZERO,
                               DiagnosticKind.WRAP_ON_OVERFLOW}),
        )
        sse = simulate(prog, _stimuli(), engine="sse", options=options)
        acc = simulate(prog, _stimuli(), engine="accmos", options=options)
        assert sse.halted_at == 1  # the wrap comes first
        assert_results_agree(sse, acc)

    def test_no_halt_records_everything(self):
        prog = _multi_fault_prog()
        options = SimulationOptions(steps=9)  # stimuli cycle: 3 fault rounds
        sse = simulate(prog, _stimuli(), engine="sse", options=options)
        acc = simulate(prog, _stimuli(), engine="accmos", options=options)
        assert_results_agree(sse, acc)
        div = sse.diagnostic("Faults_Div", DiagnosticKind.DIV_BY_ZERO)
        assert div.count == 3  # steps 2, 5, 8

    def test_custom_halt_parity(self):
        prog = _multi_fault_prog()
        watch = CustomDiagnosis(
            actor_path="Faults_Big",
            message="suspicious spike",
            predicate=lambda step, i, o: o[0] > 1_000_000,
            c_predicate="out0 > 1000000",
        )
        options = SimulationOptions(
            steps=100, custom=(watch,),
            halt_on=frozenset({DiagnosticKind.CUSTOM}),
        )
        sse = simulate(prog, _stimuli(), engine="sse", options=options)
        acc = simulate(prog, _stimuli(), engine="accmos", options=options)
        assert sse.halted_at == 1  # 5000 * 1000 > 1e6
        assert_results_agree(sse, acc)

    def test_flag_halt_beats_custom_on_same_actor(self):
        """When a flag diagnostic and a custom check would both fire at the
        same actor in the same step, both engines stop after the flag."""
        b = ModelBuilder("Order")
        x = b.inport("X", dtype=I32)
        narrow = b.dtc("Narrow", x, I8)
        b.outport("Y", narrow)
        prog = preprocess(b.build())
        watch = CustomDiagnosis(
            actor_path="Order_Narrow", message="any value",
            predicate=lambda step, i, o: True, c_predicate="1",
        )
        options = SimulationOptions(
            steps=10, custom=(watch,),
            halt_on=frozenset({DiagnosticKind.WRAP_ON_OVERFLOW,
                               DiagnosticKind.CUSTOM}),
        )
        stim = {"X": ConstantStimulus(500)}  # wraps i8 immediately
        sse = simulate(prog, dict(stim), engine="sse", options=options)
        acc = simulate(prog, dict(stim), engine="accmos", options=options)
        assert sse.halted_at == 0
        assert_results_agree(sse, acc)
        kinds = {e.kind for e in sse.diagnostics if e.first_step >= 0}
        assert kinds == {DiagnosticKind.WRAP_ON_OVERFLOW}  # custom never ran

    def test_halted_run_checksums_cover_completed_steps_only(self):
        prog = _multi_fault_prog()
        options = SimulationOptions(
            steps=100, halt_on=frozenset({DiagnosticKind.DIV_BY_ZERO})
        )
        halted = simulate(prog, _stimuli(), engine="sse", options=options)
        assert halted.halted_at == 2 and halted.steps_run == 3
        # A clean 2-step run must have the same checksums: the halted step
        # contributes nothing.
        clean = simulate(prog, _stimuli(), engine="sse", steps=2)
        assert halted.checksums == clean.checksums

"""Continuous-model extension: Adams-Bashforth integrator accuracy and
solver-order behaviour (the paper's §5 future work, implemented)."""

from __future__ import annotations

import math

import pytest

from repro import SimulationOptions, simulate
from repro.dtypes import F64, I32
from repro.model import ModelBuilder
from repro.model.errors import ValidationError
from repro.schedule import preprocess
from repro.stimuli import ConstantStimulus


def _decay_prog(solver: str, dt: float):
    """dy/dt = -y, y(0) = 1: exact solution exp(-t)."""
    b = ModelBuilder("Decay")
    u = b.inport("U", dtype=F64)  # unused forcing, keeps an input present
    y = b.block(
        "ContinuousIntegrator", "Y", [("NegY", 0)],
        params={"solver": solver, "initial": 1.0}, out_dtype=F64,
    )
    b.neg("NegY", y)
    b.terminator("T", u)
    b.outport("Out", y)
    return preprocess(b.build(), dt=dt)


def _decay_error(solver: str, dt: float, t_end: float = 2.0) -> float:
    prog = _decay_prog(solver, dt)
    # The output signal carries the state *before* the last update, i.e.
    # y((steps-1)*dt); compare against the exact solution at that time.
    steps = int(t_end / dt) + 1
    result = simulate(prog, {"U": ConstantStimulus(0.0)}, engine="sse",
                      steps=steps)
    t_sampled = (steps - 1) * dt
    return abs(result.outputs["Out"] - math.exp(-t_sampled))


class TestSolverAccuracy:
    @pytest.mark.parametrize("solver,tolerance", [
        ("euler", 0.05), ("ab2", 0.005), ("ab3", 0.005),
    ])
    def test_exponential_decay(self, solver, tolerance):
        assert _decay_error(solver, dt=0.01) < tolerance

    def test_higher_order_is_more_accurate(self):
        errors = {s: _decay_error(s, dt=0.02) for s in ("euler", "ab2", "ab3")}
        # The Euler startup step caps the observable order of AB2/AB3 at 2
        # (see the ContinuousIntegrator docstring), but both Adams methods
        # must beat Euler by a wide margin.
        assert errors["ab2"] < errors["euler"] / 10
        assert errors["ab3"] < errors["euler"] / 10

    @pytest.mark.parametrize("solver,order", [
        ("euler", 1), ("ab2", 2), ("ab3", 2),
    ])
    def test_convergence_order(self, solver, order):
        """Halving dt should shrink the error by roughly 2**order.

        AB3's observable order here is 2: the self-starting scheme takes
        its first step with Euler, whose O(dt^2) contribution dominates
        (documented on ContinuousIntegrator).
        """
        coarse = _decay_error(solver, dt=0.04)
        fine = _decay_error(solver, dt=0.02)
        ratio = coarse / fine
        assert ratio > 2 ** (order - 0.6), (solver, ratio)

    def test_integrates_a_ramp_exactly_enough(self):
        # dy/dt = t -> y = t^2/2; AB2 is exact for linear integrands.
        b = ModelBuilder("Ramp")
        t = b.block("Clock", "T")
        y = b.continuous_integrator("Y", t, solver="ab2")
        b.outport("Out", y)
        prog = preprocess(b.build(), dt=0.1)
        result = simulate(prog, {}, engine="sse", steps=100)
        # y integrates past clock values; expected (T=10) ~ 50 +- O(dt).
        assert result.outputs["Out"] == pytest.approx(50.0, abs=1.5)


class TestValidationAndEngines:
    def test_unknown_solver_rejected(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=F64)
        b.block("ContinuousIntegrator", "Y", [x], params={"solver": "rk4"})
        with pytest.raises(ValidationError, match="solver"):
            preprocess(b.build())

    def test_integer_output_rejected(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=F64)
        b.block("ContinuousIntegrator", "Y", [x],
                params={"solver": "ab2"}, out_dtype=I32)
        with pytest.raises(ValidationError, match="float"):
            preprocess(b.build())

    def test_breaks_algebraic_loops(self):
        """The integrator is non-direct-feedthrough, so dy/dt = f(y)
        feedback schedules without an algebraic loop."""
        prog = _decay_prog("ab3", dt=0.01)
        assert len(prog.order) == len(prog.actors)

    def test_startup_ramps_through_orders(self):
        """AB3 uses Euler on step 0, AB2 on step 1, AB3 afterwards —
        first three outputs must match the hand-computed sequence."""
        b = ModelBuilder("M")
        x = b.inport("X", dtype=F64)
        y = b.continuous_integrator("Y", x, solver="ab3")
        b.outport("Out", y)
        prog = preprocess(b.build(), dt=1.0)
        options = SimulationOptions(steps=4, collect="all", monitor_limit=8)
        from repro.stimuli import SequenceStimulus

        result = simulate(prog, {"X": SequenceStimulus([1.0, 2.0, 4.0, 8.0])},
                          engine="sse", options=options)
        values = [v for _, v in result.monitored["M_Out"]]
        # y0=0; after step0 (euler,u=1): 1; after step1 (ab2,u=2,f1=1): 1+3-0.5=3.5
        # after step2 (ab3,u=4,f1=2,f2=1): 3.5 + 23/12*4 - 16/12*2 + 5/12*1 = 8.916666...
        assert values[0] == 0.0
        assert values[1] == 1.0
        assert values[2] == 3.5
        assert values[3] == pytest.approx(3.5 + 23 / 12 * 4 - 16 / 12 * 2 + 5 / 12)

"""Benchmark pattern factory internals: exact actor budgets per pattern."""

from __future__ import annotations

import random

import pytest

from repro.benchmarks.patterns import pattern_subsystem
from repro.dtypes import F64, I16, I32
from repro.model import ModelBuilder, Model
from repro.schedule import preprocess


def _base():
    b = ModelBuilder("Pat")
    f = b.inport("F", dtype=F64)
    i = b.inport("I", dtype=I32)
    return b, f, i


@pytest.mark.parametrize("kind,src_is_float", [
    ("float_chain", True),
    ("int_chain", False),
    ("branch", False),
    ("counter", True),
    ("lookup", True),
])
@pytest.mark.parametrize("size", [12, 23])
class TestExactBudgets:
    def test_unguarded_pattern_hits_exact_count(self, kind, src_is_float, size):
        b, f, i = _base()
        before = Model("Pat", root=b.scope).n_actors
        pattern_subsystem(b, "Blk", kind, f if src_is_float else i, size,
                          random.Random(7))
        after = Model("Pat", root=b.scope).n_actors
        assert after - before == size

    def test_enabled_pattern_hits_exact_count(self, kind, src_is_float, size):
        b, f, i = _base()
        enable = b.relational("En", ">", i, b.constant("Z", 0))
        before = Model("Pat", root=b.scope).n_actors
        pattern_subsystem(b, "Blk", kind, f if src_is_float else i, size,
                          random.Random(7), enable=enable)
        after = Model("Pat", root=b.scope).n_actors
        assert after - before == size


class TestPatternValidity:
    def test_too_small_budget_rejected(self):
        b, f, i = _base()
        with pytest.raises(ValueError, match="needs at least"):
            pattern_subsystem(b, "Blk", "branch", i, 5, random.Random(1))

    @pytest.mark.parametrize("kind", ["float_chain", "int_chain", "branch",
                                      "counter", "lookup"])
    def test_generated_patterns_simulate(self, kind):
        from repro import simulate
        from repro.stimuli import default_stimuli

        b, f, i = _base()
        src = i if kind in ("int_chain", "branch") else f
        out = pattern_subsystem(b, "Blk", kind, src, 16, random.Random(3),
                                int_dtype=I16)
        b.outport("Y", out)
        prog = preprocess(b.build())
        result = simulate(prog, default_stimuli(prog), engine="sse", steps=100)
        assert result.steps_run == 100

    def test_deterministic_given_same_seed(self):
        from repro.slx import model_to_xml

        def build():
            b, f, i = _base()
            out = pattern_subsystem(b, "Blk", "branch", i, 20, random.Random(5))
            b.outport("Y", out)
            return b.build()

        assert model_to_xml(build()) == model_to_xml(build())

"""Actor-type registry completeness and spec coherence.

The paper claims template libraries "for over fifty commonly used actors";
these tests pin that inventory and check that every registered type is
fully wired: semantics class, C template, Python template, inference hook.
"""

from __future__ import annotations

import pytest

from repro.actors import all_specs, get_semantics_class, get_spec, is_known_type
from repro.actors.base import ActorSemantics
from repro.codegen.templates import OUTPUT_EMITTERS, UPDATE_EMITTERS


class TestInventory:
    def test_at_least_fifty_types(self):
        assert len(all_specs()) >= 50

    def test_expected_families_present(self):
        specs = all_specs()
        for name in (
            "Sum", "Product", "Gain", "Math", "Switch", "MultiportSwitch",
            "Logic", "RelationalOperator", "UnitDelay", "Delay",
            "DiscreteIntegrator", "DataStoreMemory", "DataStoreRead",
            "DataStoreWrite", "Lookup1D", "DirectLookup", "Inport", "Outport",
            "Constant", "SineWave", "RandomSource", "Merge", "EnablePort",
        ):
            assert name in specs, name

    def test_every_category_nonempty(self):
        categories = {spec.category for spec in all_specs().values()}
        assert {"source", "sink", "math", "logic", "control", "memory",
                "lookup", "store"} <= categories

    def test_is_known_type(self):
        assert is_known_type("Sum")
        assert not is_known_type("FluxCapacitor")

    def test_get_spec_unknown_raises(self):
        with pytest.raises(KeyError):
            get_spec("FluxCapacitor")

    def test_duplicate_registration_rejected(self):
        from repro.actors.registry import ActorSpec, register
        from repro.actors.sources import ConstantSemantics

        with pytest.raises(ValueError, match="registered twice"):
            register(ActorSpec("Sum", "math", 1, 1, 1, ConstantSemantics))


class TestSpecCoherence:
    @pytest.mark.parametrize("name", sorted(all_specs()))
    def test_semantics_is_actor_semantics(self, name):
        assert issubclass(get_semantics_class(name), ActorSemantics)

    @pytest.mark.parametrize("name", sorted(all_specs()))
    def test_executable_types_have_c_templates(self, name):
        spec = get_spec(name)
        if spec.executable:
            assert name in OUTPUT_EMITTERS, f"{name} missing C template"

    @pytest.mark.parametrize("name", sorted(all_specs()))
    def test_stateful_specs_have_update_emitters(self, name):
        spec = get_spec(name)
        if spec.stateful and spec.executable:
            assert name in UPDATE_EMITTERS, f"{name} missing C update template"

    @pytest.mark.parametrize("name", sorted(all_specs()))
    def test_non_feedthrough_implies_stateful(self, name):
        spec = get_spec(name)
        if not spec.direct_feedthrough:
            assert spec.stateful

    def test_branch_actors(self):
        assert get_spec("Switch").is_branch
        assert get_spec("MultiportSwitch").is_branch
        assert not get_spec("Sum").is_branch

    def test_boolean_logic_actors(self):
        for name in ("Logic", "RelationalOperator", "CompareToConstant",
                     "CompareToZero"):
            assert get_spec(name).boolean_logic

    def test_combination_condition_only_logic(self):
        combos = [
            name for name, spec in all_specs().items()
            if spec.combination_condition
        ]
        assert combos == ["Logic"]

    def test_calculation_actors_marked(self):
        for name in ("Sum", "Product", "Gain", "DataTypeConversion",
                     "Accumulator", "DataStoreWrite"):
            assert get_spec(name).is_calculation, name
        for name in ("Logic", "Switch", "UnitDelay", "Terminator"):
            assert not get_spec(name).is_calculation, name

    def test_structural_types_not_executable(self):
        assert not get_spec("DataStoreMemory").executable
        assert not get_spec("EnablePort").executable

    def test_descriptions_everywhere(self):
        for name, spec in all_specs().items():
            assert spec.description, f"{name} has no description"

"""Thread-parallel in-process execution: pool, packing, determinism.

Pins the PR's contract: running N private library instances on N threads
(``run_inproc(threads=N)``, ``run_jobs(mode="inproc-threads")``,
``run_campaign(threads=N)``) is a pure throughput lever — byte-identical
to ``threads=1`` and to the SSE reference on every zoo model, zero
process spawns, with a mid-batch fault on one thread falling down the
existing ladder without changing a single bit.  The cost-model packer is
pinned to never predict a worse makespan than naive round-robin.
"""

from __future__ import annotations

import subprocess

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimulationOptions, simulate, telemetry
from repro.codegen import driver as driver_mod
from repro.codegen.driver import find_c_compiler, supports_shared_objects
from repro.engines.accmos import compile_model
from repro.engines.base import SimulationResult
from repro.inproc import InstancePool, LibraryFault, LoadedModel
from repro.inproc.library import _dlclose
from repro.runner.cache import ArtifactCache
from repro.runner.costmodel import (
    CaseCostModel,
    default_cost_model,
    makespan,
    pack_shards,
)
from repro.runner.jobs import SimulationJob
from repro.runner.pool import run_jobs
from repro.schedule import preprocess

from conftest import HAS_CC
from helpers import ZOO, assert_results_agree

STEPS = 200

requires_shared = pytest.mark.skipif(
    not HAS_CC or supports_shared_objects() is not True,
    reason="toolchain cannot build loadable shared objects",
)


@pytest.fixture(scope="module")
def zoo_programs():
    programs = {}
    for name, factory in ZOO.items():
        model, stimuli = factory()
        programs[name] = (preprocess(model), stimuli)
    return programs


def _varied_cases(stimuli, n):
    """n cases with differing step counts, so shards carry unequal work."""
    return [
        (
            stimuli(),
            SimulationOptions(
                steps=STEPS + 37 * k, coverage=True, diagnostics=True
            ),
        )
        for k in range(n)
    ]


# ----------------------------------------------------------------------
# zoo-wide byte identity: threads=4 vs threads=1 vs SSE
# ----------------------------------------------------------------------
@requires_shared
@pytest.mark.parametrize("name", sorted(ZOO))
def test_threaded_matches_sequential_and_sse(zoo_programs, name):
    prog, stimuli = zoo_programs[name]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    cases = _varied_cases(stimuli, 6)
    sequential = model.run_inproc(cases)
    threaded = model.run_inproc(cases, threads=4)
    assert len(threaded) == len(cases)
    for case, seq, par in zip(cases, sequential, threaded):
        assert isinstance(par, SimulationResult)
        assert_results_agree(seq, par)
        sse = simulate(prog, case[0], engine="sse", options=case[1])
        assert_results_agree(sse, par)
    assert model.inproc_available


@requires_shared
def test_explicit_shards_identity(zoo_programs):
    """Cost-model-packed shards produce the same bytes as the default
    round-robin stride (shard membership must never matter)."""
    prog, stimuli = zoo_programs[sorted(ZOO)[0]]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    cases = _varied_cases(stimuli, 8)
    costs = [float(o.steps) for _, o in cases]
    shards = pack_shards(costs, 3)
    packed = model.run_inproc(cases, threads=3, shards=shards)
    default = model.run_inproc(cases, threads=3)
    for a, b in zip(packed, default):
        assert_results_agree(a, b)


@requires_shared
def test_bad_shards_rejected(zoo_programs):
    prog, stimuli = zoo_programs[sorted(ZOO)[0]]
    opts = SimulationOptions(steps=STEPS)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    cases = [(stimuli(), None) for _ in range(3)]
    with pytest.raises(ValueError, match="partition"):
        model.run_inproc(cases, threads=2, shards=[[0, 1], [1, 2]])
    with pytest.raises(ValueError, match="partition"):
        model.run_inproc(cases, threads=2, shards=[[0], [2]])


# ----------------------------------------------------------------------
# induced mid-batch fault on one thread: byte-identical ladder fallback
# ----------------------------------------------------------------------
@requires_shared
def test_threaded_fault_falls_back_byte_identical(zoo_programs, monkeypatch):
    prog, stimuli = zoo_programs[sorted(ZOO)[0]]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    sse = simulate(prog, stimuli(), engine="sse", options=opts)

    real_load = model.load
    loaded = []

    def load_with_fault():
        lib = real_load()
        if not loaded:
            # Only the first instance (one worker thread) is flaky: it
            # faults on its second case, mid-batch.
            real_invoke = lib._invoke
            calls = {"n": 0}

            def flaky_invoke(record):
                calls["n"] += 1
                if calls["n"] == 2:
                    return -1
                return real_invoke(record)

            lib._invoke = flaky_invoke
        loaded.append(lib)
        return lib

    monkeypatch.setattr(model, "load", load_with_fault)
    outcomes = model.run_inproc([(stimuli(), None) for _ in range(9)], threads=3)
    assert len(outcomes) == 9
    for outcome in outcomes:
        assert isinstance(outcome, SimulationResult)
        assert_results_agree(sse, outcome)
    # The fault quarantined the in-process rung for this model…
    assert not model.inproc_available
    # …and later batches (threaded or not) still agree bit-for-bit.
    again = model.run_inproc([(stimuli(), None) for _ in range(2)], threads=2)
    for outcome in again:
        assert_results_agree(sse, outcome)


@requires_shared
def test_threaded_load_failure_falls_back(zoo_programs, monkeypatch):
    prog, stimuli = zoo_programs[sorted(ZOO)[0]]
    opts = SimulationOptions(steps=STEPS)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    sse = simulate(prog, stimuli(), engine="sse", options=opts)

    def broken_load():
        raise LibraryFault("induced load failure")

    monkeypatch.setattr(model, "load", broken_load)
    outcomes = model.run_inproc([(stimuli(), None) for _ in range(4)], threads=2)
    assert len(outcomes) == 4
    for outcome in outcomes:
        assert_results_agree(sse, outcome, coverage=False, diagnostics=False)
    assert not model.inproc_available


# ----------------------------------------------------------------------
# instance pool semantics (no compiler needed)
# ----------------------------------------------------------------------
class FakeLib:
    def __init__(self):
        self.healthy = True
        self.retired = 0

    def retire(self):
        self.healthy = False
        self.retired += 1


class TestInstancePool:
    def test_reuse_over_reload(self):
        pool = InstancePool(max_idle=4)
        lib = FakeLib()
        got = pool.acquire("k", lambda: lib)
        assert got is lib
        pool.release("k", lib)
        assert pool.acquire("k", lambda: FakeLib()) is lib
        assert pool.stats()["loads"] == 1
        assert pool.stats()["reuses"] == 1

    def test_miss_loads_fresh(self):
        pool = InstancePool(max_idle=4)
        a = pool.acquire("a", FakeLib)
        b = pool.acquire("b", FakeLib)
        assert a is not b
        assert pool.stats()["loads"] == 2
        assert pool.stats()["reuses"] == 0

    def test_unhealthy_release_retires(self):
        pool = InstancePool(max_idle=4)
        lib = pool.acquire("k", FakeLib)
        lib.healthy = False
        pool.release("k", lib)
        assert pool.active == 0
        assert pool.stats()["retired_error"] == 1

    def test_lru_bound_evicts_oldest(self):
        pool = InstancePool(max_idle=2)
        libs = [FakeLib() for _ in range(3)]
        for i, lib in enumerate(libs):
            pool.release(f"k{i}", lib)
        assert pool.active == 2
        assert libs[0].retired == 1  # oldest evicted
        assert pool.stats()["retired_lru"] == 1

    def test_mru_handed_out_first(self):
        pool = InstancePool(max_idle=4)
        first, second = FakeLib(), FakeLib()
        pool.release("k", first)
        pool.release("k", second)
        assert pool.acquire("k", FakeLib) is second

    def test_close_retires_idle_and_late_releases(self):
        pool = InstancePool(max_idle=4)
        idle, held = FakeLib(), FakeLib()
        pool.release("k", idle)
        pool.close()
        assert idle.retired == 1
        pool.release("k", held)  # holder returns after close
        assert held.retired == 1
        with pytest.raises(RuntimeError):
            pool.acquire("k", FakeLib)

    def test_retired_while_idle_not_handed_out(self):
        pool = InstancePool(max_idle=4)
        lib = FakeLib()
        pool.release("k", lib)
        lib.healthy = False  # retired behind the pool's back
        fresh = pool.acquire("k", FakeLib)
        assert fresh is not lib
        assert fresh.healthy


# ----------------------------------------------------------------------
# cost model + packing
# ----------------------------------------------------------------------
class TestCostModel:
    def test_predict_monotone(self):
        m = CaseCostModel()
        assert m.predict(1000, 4) > m.predict(100, 4) > 0
        assert m.predict(100, 8) > m.predict(100, 2)

    def test_observe_converges_on_rate(self):
        m = CaseCostModel()
        for _ in range(50):
            m.observe(10_000, 10, seconds=m.base_seconds + 1.0)
        # 100k step-actor units took 1s beyond base -> 1e-5 s/unit.
        assert m.predict(10_000, 10) == pytest.approx(
            m.base_seconds + 1.0, rel=0.05
        )

    def test_observe_rejects_nonpositive(self):
        m = CaseCostModel()
        before = m.predict(100, 1)
        m.observe(100, 1, seconds=0.0)
        m.observe(100, 1, seconds=-1.0)
        assert m.predict(100, 1) == before
        assert m.observations == 0

    def test_default_model_is_shared(self):
        assert default_cost_model() is default_cost_model()


def _rr_makespan(costs, n_shards):
    shards = [list(range(s, len(costs), n_shards)) for s in range(n_shards)]
    return makespan(shards, costs)


class TestPackShards:
    def test_partition_is_exact(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        shards = pack_shards(costs, 3)
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(len(costs)))

    def test_single_shard_keeps_order(self):
        assert pack_shards([1.0, 2.0, 3.0], 1) == [[0, 1, 2]]

    def test_lpt_balances_obvious_case(self):
        # One long case + shorts: LPT isolates the long one.
        costs = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        shards = pack_shards(costs, 2)
        assert makespan(shards, costs) == 10.0

    def test_deterministic(self):
        costs = [2.0, 2.0, 2.0, 2.0, 2.0]
        assert pack_shards(costs, 2) == pack_shards(costs, 2)

    @settings(max_examples=200, deadline=None)
    @given(
        costs=st.lists(
            st.floats(
                min_value=0.0, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=40,
        ),
        n_shards=st.integers(min_value=1, max_value=8),
    )
    def test_never_worse_than_round_robin(self, costs, n_shards):
        shards = pack_shards(costs, n_shards)
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(len(costs)))
        assert len(shards) <= max(1, n_shards)
        effective = min(n_shards, len(costs))
        assert makespan(shards, costs) <= _rr_makespan(costs, effective) + 1e-9


# ----------------------------------------------------------------------
# runner mode="inproc-threads": identity, grouping, zero spawns
# ----------------------------------------------------------------------
@requires_shared
def test_run_jobs_inproc_threads_matches_thread_mode(zoo_programs):
    prog, _ = zoo_programs[sorted(ZOO)[0]]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    jobs = [
        SimulationJob(prog=prog, seed=seed, options=opts)
        for seed in range(1, 7)
    ]
    baseline = run_jobs(
        jobs, workers=1, mode="thread", cache=False,
        batch_size=3, serve=False,
    )
    threaded = run_jobs(jobs, workers=3, mode="inproc-threads", cache=False)
    assert [r.seed for r in threaded] == [r.seed for r in baseline]
    for a, b in zip(baseline, threaded):
        assert a.ok and b.ok
        assert_results_agree(a.result, b.result)


def test_run_jobs_inproc_threads_routes_non_accmos_jobs(zoo_programs=None):
    """Non-batchable jobs (interpreted engines) take the per-job path."""
    model, _ = ZOO[sorted(ZOO)[0]]()
    prog = preprocess(model)
    opts = SimulationOptions(steps=50)
    jobs = [
        SimulationJob(prog=prog, seed=seed, engine="sse", options=opts)
        for seed in (1, 2)
    ]
    results = run_jobs(jobs, workers=2, mode="inproc-threads", cache=False)
    assert all(r.ok for r in results)
    ref = run_jobs(jobs, workers=1, mode="thread", cache=False)
    for a, b in zip(ref, results):
        assert_results_agree(a.result, b.result)


def test_run_jobs_rejects_unknown_mode():
    with pytest.raises(ValueError, match="inproc-threads"):
        run_jobs([], mode="bogus")


@requires_shared
def test_threaded_campaign_one_gcc_zero_spawns(
    zoo_programs, tmp_path, monkeypatch
):
    """A cold-cache threaded campaign compiles exactly once (the shared
    object) and never spawns a simulation process."""
    from repro.campaign import run_campaign

    prog, _ = zoo_programs[sorted(ZOO)[0]]
    cache = ArtifactCache(tmp_path / "cache")

    gcc_calls = {"n": 0}
    real_run_compiler = driver_mod._run_compiler

    def counting_compiler(*args, **kwargs):
        gcc_calls["n"] += 1
        return real_run_compiler(*args, **kwargs)

    monkeypatch.setattr(driver_mod, "_run_compiler", counting_compiler)

    def no_spawn(*args, **kwargs):
        raise AssertionError("simulation process spawned on the threaded path")

    monkeypatch.setattr(driver_mod.CompiledSimulation, "execute", no_spawn)
    monkeypatch.setattr(driver_mod.SimulationServer, "__init__", no_spawn)

    outcome = run_campaign(
        prog, steps=STEPS, max_cases=6, cache=cache, threads=3,
    )
    assert outcome.n_cases >= 1
    assert gcc_calls["n"] == 1
    assert cache.stats().misses == 1


@requires_shared
def test_threaded_campaign_matches_serial(zoo_programs):
    from repro.campaign import run_campaign

    prog, _ = zoo_programs[sorted(ZOO)[0]]
    kwargs = dict(steps=STEPS, max_cases=6, cache=False)
    serial = run_campaign(prog, threads=1, workers=1, **kwargs)
    threaded = run_campaign(prog, threads=4, **kwargs)
    assert threaded.n_cases == serial.n_cases
    assert threaded.saturated == serial.saturated
    assert threaded.merged.bitmaps == serial.merged.bitmaps
    for a, b in zip(serial.cases, threaded.cases):
        assert (a.seed, a.steps_run, a.new_points) == (
            b.seed, b.steps_run, b.new_points
        )


def test_resolve_threads_auto():
    from repro.runner.campaign import resolve_threads

    assert resolve_threads(1, engine="accmos") == 1
    assert resolve_threads(5, engine="accmos") == 5
    assert resolve_threads(None, engine="sse") == 1
    auto = resolve_threads(None, engine="accmos")
    assert 1 <= auto <= 4
    if supports_shared_objects() is not True:
        assert auto == 1


def test_campaign_rejects_negative_threads(zoo_programs=None):
    from repro.campaign import run_campaign

    model, _ = ZOO[sorted(ZOO)[0]]()
    prog = preprocess(model)
    with pytest.raises(ValueError, match="threads"):
        run_campaign(prog, steps=10, max_cases=1, threads=-1)


# ----------------------------------------------------------------------
# satellite fixes: init return code honored, dlclose errors counted
# ----------------------------------------------------------------------
_STUB_C = """
int acc_lib_abi_version(void) { return %(abi)d; }
long long acc_lib_result_size(void) { return 64; }
int acc_lib_init(void) { return %(init_rc)d; }
void acc_lib_reset(void) {}
int acc_lib_run_case(const unsigned char *record, long long record_len,
                     unsigned char *result, long long result_len) {
    return 0;
}
"""


def _build_stub(tmp_path, *, init_rc):
    from repro.inproc import ABI_VERSION

    cc = find_c_compiler()
    source = tmp_path / "stub.c"
    shared = tmp_path / "stub.so"
    source.write_text(_STUB_C % {"abi": ABI_VERSION, "init_rc": init_rc})
    subprocess.run(
        [cc, "-shared", "-fPIC", "-O0", str(source), "-o", str(shared)],
        check=True, capture_output=True,
    )
    return shared


@requires_shared
def test_nonzero_init_raises_and_unloads(tmp_path):
    shared = _build_stub(tmp_path, init_rc=-7)
    with pytest.raises(LibraryFault, match="acc_lib_init returned -7"):
        LoadedModel(shared, result_size=64)


@requires_shared
def test_zero_init_accepted(tmp_path):
    shared = _build_stub(tmp_path, init_rc=0)
    lib = LoadedModel(shared, result_size=64)
    assert lib.healthy
    lib.retire()


def test_dlclose_error_counted(monkeypatch):
    import _ctypes

    def failing_dlclose(handle):
        raise OSError("dlclose failed")

    monkeypatch.setattr(_ctypes, "dlclose", failing_dlclose)
    with telemetry.capture() as session:
        _dlclose(12345)  # must swallow the failure, not crash the host
    counters = session.metrics.snapshot()["counters"]
    assert counters.get("engine.inproc.dlclose_errors", 0) == 1

"""The in-process shared-library rung: packed ABI, identity, quarantine.

Pins the PR's core invariant: loading the reusable program as a shared
library and driving it through the packed binary case/result protocol is
a pure throughput lever — byte-identical results to the SSE reference
and every process-based rung across the zoo and every stimulus kind,
with a fault-quarantine ladder that drops back to the ``--serve`` rung
without changing a single bit.
"""

from __future__ import annotations

import math

import pytest

from repro import SimulationOptions, simulate
from repro.codegen.descriptor import descriptors_for, encode_case
from repro.codegen import driver as driver_mod
from repro.codegen.driver import supports_shared_objects
from repro.dtypes import F64, I32
from repro.engines.accmos import compile_model
from repro.engines.base import SimulationResult
from repro.inproc import (
    ABI_VERSION,
    LibraryFault,
    LoadedModel,
    decode_case_binary,
    encode_case_binary,
)
from repro.model.builder import ModelBuilder
from repro.model.errors import SimulationTimeout
from repro.runner.cache import ArtifactCache
from repro.schedule import preprocess
from repro.stimuli import (
    ConstantStimulus,
    IntRandomStimulus,
    PulseStimulus,
    RampStimulus,
    SequenceStimulus,
    SineStimulus,
    StepStimulus,
    UniformRandomStimulus,
)
from repro.stimuli.base import DESCRIPTOR_FIELDS

from conftest import HAS_CC, requires_cc
from helpers import ZOO, assert_results_agree

STEPS = 200

requires_shared = pytest.mark.skipif(
    not HAS_CC or supports_shared_objects() is not True,
    reason="toolchain cannot build loadable shared objects",
)


@pytest.fixture(scope="module")
def zoo_programs():
    programs = {}
    for name, factory in ZOO.items():
        model, stimuli = factory()
        programs[name] = (preprocess(model), stimuli)
    return programs


# ----------------------------------------------------------------------
# three-way byte identity: SSE vs spawned batch vs in-process library
# ----------------------------------------------------------------------
@requires_shared
@pytest.mark.parametrize("name", sorted(ZOO))
def test_inproc_matches_sse_and_batch(zoo_programs, name):
    prog, stimuli = zoo_programs[name]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    sse = simulate(prog, stimuli(), engine="sse", options=opts)
    batch = model.run_batch([(stimuli(), None) for _ in range(3)])
    inproc = model.run_inproc([(stimuli(), None) for _ in range(3)])
    assert len(inproc) == 3
    assert_results_agree(sse, inproc[0])
    for via_batch, via_inproc in zip(batch, inproc):
        assert_results_agree(via_batch, via_inproc)
    # The whole batch ran in-process (no fallback kicked in).
    assert model.inproc_available
    assert all(isinstance(r, SimulationResult) for r in inproc)


def _kinds_model():
    b = ModelBuilder("Kinds")
    x = b.inport("X", dtype=F64)
    n = b.inport("N", dtype=I32)
    total = b.sum_("Total", [x, b.dtc("NF", n, F64)], dtype=F64)
    b.outport("Out", total)
    return preprocess(b.build())


KIND_CASES = {
    "constant": lambda: {
        "X": ConstantStimulus(2.5), "N": ConstantStimulus(3),
    },
    "sequence": lambda: {
        "X": SequenceStimulus([0.5, -1.25, 3.0]),
        "N": SequenceStimulus([7, 0, -2, 9]),
    },
    "ramp": lambda: {
        "X": RampStimulus(start=-1.0, slope=0.125),
        "N": ConstantStimulus(1),
    },
    "sine": lambda: {
        "X": SineStimulus(amplitude=2.0, period_steps=37, phase=0.5, bias=0.25),
        "N": ConstantStimulus(0),
    },
    "step": lambda: {
        "X": StepStimulus(at=40, before=-0.5, after=1.5),
        "N": StepStimulus(at=90, before=0, after=4),
    },
    "pulse": lambda: {
        "X": PulseStimulus(period=11, duty=4, high=1.25, low=-0.25),
        "N": PulseStimulus(period=7, duty=2, high=3, low=1),
    },
    "uniform_random": lambda: {
        "X": UniformRandomStimulus(23, -2.0, 2.0), "N": ConstantStimulus(2),
    },
    "int_random": lambda: {
        "X": ConstantStimulus(0.5), "N": IntRandomStimulus(31, -100, 100),
    },
}


@requires_shared
@pytest.mark.parametrize("kind", sorted(KIND_CASES))
def test_inproc_identity_every_stimulus_kind(kind):
    """Each descriptor kind round-trips the packed binary protocol."""
    prog = _kinds_model()
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    make = KIND_CASES[kind]
    sse = simulate(prog, make(), engine="sse", options=opts)
    (inproc,) = model.run_inproc([(make(), None)])
    assert_results_agree(sse, inproc)


# ----------------------------------------------------------------------
# encoder conformance: text and binary wire formats carry the same case
# ----------------------------------------------------------------------
def _parse_text_case(text: str) -> dict:
    """Parse the text wire format with the same field table the encoders
    use, into the same shape ``decode_case_binary`` returns."""
    tokens = iter(text.split())
    assert next(tokens) == "case"

    def f64(tok: str) -> float:
        if tok.endswith("nan"):
            return float("nan")
        if tok.endswith("inf"):
            return float(tok)
        return float.fromhex(tok)

    record = {
        "steps": int(next(tokens)),
        "time_budget": f64(next(tokens)),
        "deadline": f64(next(tokens)),
        "ports": [],
    }
    for _ in range(int(next(tokens))):
        port = {}
        for attr, _member, kind in DESCRIPTOR_FIELDS:
            tok = next(tokens)
            port[attr] = f64(tok) if kind == "f" else int(tok)
        tab_len = int(next(tokens))
        if port["table_is_float"]:
            port["table"] = tuple(f64(next(tokens)) for _ in range(tab_len))
        else:
            port["table"] = tuple(int(next(tokens)) for _ in range(tab_len))
        record["ports"].append(port)
    assert next(tokens, None) is None
    return record


def _assert_same_value(a, b, context):
    if isinstance(a, float) and math.isnan(a):
        assert isinstance(b, float) and math.isnan(b), context
    else:
        assert a == b, context


@pytest.mark.parametrize("kind", sorted(KIND_CASES))
def test_text_and_binary_encodings_agree(kind):
    """Satellite: both wire formats are derived from DESCRIPTOR_FIELDS;
    every stimulus kind must carry identical values through both."""
    prog = _kinds_model()
    descriptors = descriptors_for(prog, KIND_CASES[kind]())
    assert descriptors is not None
    text = encode_case(descriptors, steps=77, time_budget=1.5, deadline=None)
    binary = encode_case_binary(
        descriptors, steps=77, time_budget=1.5, deadline=None
    )
    via_text = _parse_text_case(text)
    via_binary = decode_case_binary(binary)
    assert via_text["steps"] == via_binary["steps"] == 77
    _assert_same_value(via_text["time_budget"], via_binary["time_budget"], kind)
    _assert_same_value(via_text["deadline"], via_binary["deadline"], kind)
    assert len(via_text["ports"]) == len(via_binary["ports"])
    for t_port, b_port in zip(via_text["ports"], via_binary["ports"]):
        for attr, _member, _kind in DESCRIPTOR_FIELDS:
            _assert_same_value(t_port[attr], b_port[attr], (kind, attr))
        assert len(t_port["table"]) == len(b_port["table"])
        for tv, bv in zip(t_port["table"], b_port["table"]):
            _assert_same_value(tv, bv, (kind, "table"))


def test_binary_record_rejects_truncation_and_trailing():
    prog = _kinds_model()
    descriptors = descriptors_for(prog, KIND_CASES["sequence"]())
    record = encode_case_binary(descriptors, steps=10)
    assert decode_case_binary(record)["steps"] == 10
    from repro.model.errors import SimulationError

    with pytest.raises(SimulationError, match="truncated"):
        decode_case_binary(record[:-4])
    with pytest.raises(SimulationError, match="trailing"):
        decode_case_binary(record + b"\x00" * 8)


# ----------------------------------------------------------------------
# the C-side reader: status codes and the load-time handshake
# ----------------------------------------------------------------------
@requires_shared
def test_library_rejects_malformed_records():
    """The C reader returns -1 for truncated/trailing bytes, -2 for a
    port-count mismatch, -3 for an undersized result buffer — and any
    nonzero status retires the instance."""
    import ctypes

    prog = _kinds_model()
    opts = SimulationOptions(steps=20)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    descriptors = descriptors_for(prog, KIND_CASES["constant"]())
    record = encode_case_binary(descriptors, steps=20)

    lib = model.load()
    try:
        assert lib._invoke(record[:-8]) == -1  # truncated
        assert lib._invoke(record + b"\x00" * 8) == -1  # trailing bytes
        assert lib._invoke(encode_case_binary(descriptors[:1], steps=20)) == -2
        small = ctypes.create_string_buffer(8)
        assert lib._lib.acc_lib_run_case(record, len(record), small, 8) == -3
        # A good record still runs after the rejected ones.
        assert lib._invoke(record) == 0

        with pytest.raises(LibraryFault, match="-1"):
            lib.run_case(record[:-8])
        assert not lib.healthy  # run_case faults retire the instance
        with pytest.raises(LibraryFault, match="retired"):
            lib.run_case(record)
    finally:
        lib.retire()


@requires_shared
def test_handshake_rejects_abi_and_size_mismatch(monkeypatch):
    prog = _kinds_model()
    opts = SimulationOptions(steps=20)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    shared = model.compiled.ensure_shared()

    with pytest.raises(LibraryFault, match="result size"):
        LoadedModel(shared, result_size=8)

    import repro.inproc.library as library_mod

    monkeypatch.setattr(library_mod, "ABI_VERSION", ABI_VERSION + 1)
    with pytest.raises(LibraryFault, match="ABI version"):
        model.load()


# ----------------------------------------------------------------------
# per-case deadlines, enforced inside the library
# ----------------------------------------------------------------------
@requires_shared
def test_inproc_deadline_trips_as_timeout():
    prog = _kinds_model()
    opts = SimulationOptions(steps=50_000_000, coverage=False, checksum=False)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    make = KIND_CASES["sine"]
    outcomes = model.run_inproc(
        [(make(), None), (make(), None)], timeout_seconds=1e-6
    )
    assert len(outcomes) == 2
    assert all(isinstance(o, SimulationTimeout) for o in outcomes)
    # A deadline trip is not a fault: the library stays in service.
    assert model.inproc_available


# ----------------------------------------------------------------------
# fault quarantine: induced library fault falls back to --serve
# ----------------------------------------------------------------------
@requires_shared
def test_induced_fault_quarantines_and_falls_back(zoo_programs):
    prog, stimuli = zoo_programs[sorted(ZOO)[0]]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    sse = simulate(prog, stimuli(), engine="sse", options=opts)

    lib = model.load()
    calls = {"n": 0}
    real_invoke = lib._invoke

    def flaky_invoke(record):
        calls["n"] += 1
        if calls["n"] == 2:
            return -1  # induced in-library fault on the second case
        return real_invoke(record)

    lib._invoke = flaky_invoke
    outcomes = model.run_inproc(
        [(stimuli(), None) for _ in range(3)], library=lib
    )
    assert len(outcomes) == 3
    # Every case — before and after the fault — is byte-identical to SSE.
    for outcome in outcomes:
        assert isinstance(outcome, SimulationResult)
        assert_results_agree(sse, outcome)
    # The fault quarantined the in-process rung for this model…
    assert not lib.healthy
    assert not model.inproc_available
    # …and later batches go straight to the process rungs, still equal.
    again = model.run_inproc([(stimuli(), None)])
    assert_results_agree(sse, again[0])


@requires_shared
def test_load_failure_quarantines(zoo_programs, monkeypatch):
    prog, stimuli = zoo_programs[sorted(ZOO)[0]]
    opts = SimulationOptions(steps=STEPS)
    model = compile_model(prog, opts, cache=False, artifact="shared")
    sse = simulate(prog, stimuli(), engine="sse", options=opts)

    def broken_load():
        raise LibraryFault("induced load failure")

    monkeypatch.setattr(model, "load", broken_load)
    outcomes = model.run_inproc([(stimuli(), None) for _ in range(2)])
    assert len(outcomes) == 2
    for outcome in outcomes:
        assert_results_agree(sse, outcome, coverage=False, diagnostics=False)
    assert not model.inproc_available


# ----------------------------------------------------------------------
# campaign integration: one gcc, zero process spawns
# ----------------------------------------------------------------------
@requires_shared
def test_campaign_inproc_one_gcc_zero_spawns(zoo_programs, tmp_path, monkeypatch):
    """A cold-cache inproc campaign compiles exactly once (the shared
    object) and never spawns a simulation process."""
    from repro.campaign import run_campaign

    prog, _ = zoo_programs[sorted(ZOO)[0]]
    cache = ArtifactCache(tmp_path / "cache")

    gcc_calls = {"n": 0}
    real_run_compiler = driver_mod._run_compiler

    def counting_compiler(*args, **kwargs):
        gcc_calls["n"] += 1
        return real_run_compiler(*args, **kwargs)

    monkeypatch.setattr(driver_mod, "_run_compiler", counting_compiler)

    def no_spawn(*args, **kwargs):
        raise AssertionError("simulation process spawned on the inproc path")

    monkeypatch.setattr(driver_mod.CompiledSimulation, "execute", no_spawn)
    monkeypatch.setattr(driver_mod.SimulationServer, "__init__", no_spawn)

    outcome = run_campaign(
        prog, steps=STEPS, max_cases=6, batch_size=3,
        cache=cache, serve=False, inproc=True,
    )
    assert outcome.n_cases >= 1
    assert gcc_calls["n"] == 1
    assert cache.stats().misses == 1


@requires_shared
def test_campaign_inproc_matches_default_path(zoo_programs):
    from repro.campaign import run_campaign

    prog, _ = zoo_programs[sorted(ZOO)[0]]
    kwargs = dict(steps=STEPS, max_cases=4, batch_size=2, cache=False)
    via_inproc = run_campaign(prog, inproc=True, serve=False, **kwargs)
    via_spawn = run_campaign(prog, inproc=False, serve=False, **kwargs)
    assert via_inproc.n_cases == via_spawn.n_cases
    assert via_inproc.saturated == via_spawn.saturated
    assert via_inproc.merged.bitmaps == via_spawn.merged.bitmaps
    for a, b in zip(via_inproc.cases, via_spawn.cases):
        assert (a.seed, a.steps_run, a.new_points) == (
            b.seed, b.steps_run, b.new_points
        )


# ----------------------------------------------------------------------
# validation errors (satellite: reject unknown rungs/engines clearly)
# ----------------------------------------------------------------------
def test_run_fuzz_rejects_unknown_rungs():
    from repro.fuzz import ALL_RUNGS, FuzzConfig, run_fuzz

    with pytest.raises(ValueError) as excinfo:
        run_fuzz(FuzzConfig(cases=1, rungs=["accmos", "warp_drive"]))
    message = str(excinfo.value)
    assert "warp_drive" in message
    for rung in ALL_RUNGS:
        assert rung in message
    assert "accmos_inproc" in ALL_RUNGS


def test_run_campaign_rejects_unknown_engine():
    from repro.campaign import run_campaign
    from repro.engines.api import ENGINES

    b = ModelBuilder("Tiny")
    x = b.inport("X", dtype=I32)
    b.outport("Y", x)
    prog = preprocess(b.build())
    with pytest.raises(ValueError) as excinfo:
        run_campaign(prog, engine="warp", steps=10)
    message = str(excinfo.value)
    assert "warp" in message
    for engine in ENGINES:
        assert engine in message


def test_available_rungs_gates_inproc(monkeypatch):
    import repro.fuzz.oracle as oracle_mod

    monkeypatch.setattr(oracle_mod, "find_c_compiler", lambda: "/usr/bin/cc")
    monkeypatch.setattr(oracle_mod, "supports_shared_objects", lambda: False)
    rungs = oracle_mod.available_rungs()
    assert "accmos_inproc" not in rungs
    assert "accmos" in rungs
    monkeypatch.setattr(oracle_mod, "supports_shared_objects", lambda: True)
    assert "accmos_inproc" in oracle_mod.available_rungs()


# ----------------------------------------------------------------------
# fuzz oracle rung
# ----------------------------------------------------------------------
@requires_shared
def test_fuzz_oracle_inproc_rung_agrees():
    from repro.fuzz.generate import generate_case
    from repro.fuzz.oracle import run_case

    for index in range(3):
        case = generate_case(1000 + index, max_actors=6, steps=24)
        report = run_case(case, rungs=("accmos", "accmos_inproc"))
        assert report.agreed, report.divergences


# ----------------------------------------------------------------------
# shared cache entry: both artifacts, one key, lazy sibling compiles
# ----------------------------------------------------------------------
@requires_shared
def test_shared_and_binary_share_one_cache_entry(tmp_path):
    prog = _kinds_model()
    opts = SimulationOptions(steps=20)
    cache = ArtifactCache(tmp_path / "cache")

    model = compile_model(prog, opts, cache=cache, artifact="shared")
    assert model.compiled.shared is not None
    assert model.compiled.binary is None  # executable not built yet
    assert cache.stats().entries == 1

    # The executable materializes lazily into the *same* entry…
    binary = model.compiled.ensure_binary()
    assert binary.parent == model.compiled.shared.parent
    assert cache.stats().entries == 1

    # …and a fresh compile of either form is a pure cache hit.
    again = compile_model(prog, opts, cache=cache, artifact="binary")
    assert again.compiled.cache_hit
    assert again.compiled.ensure_shared().is_file()
    # Two misses (one per artifact's first build), then pure hits.
    stats = cache.stats()
    assert (stats.misses, stats.entries) == (2, 1)

"""Unit tests for logic, control, memory, source, lookup, and store actors."""

from __future__ import annotations

import math

import pytest

from repro.actors.base import BindContext, StoreBank
from repro.actors.registry import get_spec
from repro.actors.sources import lcg_next, lcg_uniform
from repro.dtypes import BOOL, F64, I8, I16, I32, U64
from repro.model.actor import Actor

from test_actors_math import run_actor


def run_stateful(block_type, input_seq, **kwargs):
    """Run several output+update cycles; returns the output sequence."""
    params = kwargs.pop("params", None)
    out_dtype = kwargs.pop("out_dtype")
    in_dtypes = kwargs.pop("in_dtypes", ())
    operator = kwargs.pop("operator", None)
    dt = kwargs.pop("dt", 1.0)
    n_in = len(input_seq[0]) if input_seq else 0
    actor = Actor.create(
        "A", block_type, n_inputs=n_in,
        n_outputs=get_spec(block_type).n_outputs,
        operator=operator, out_dtype=out_dtype, params=params,
    )
    ctx = BindContext(
        in_dtypes=tuple(in_dtypes), out_dtypes=(out_dtype,) * actor.n_outputs,
        stores=kwargs.pop("stores", StoreBank()), dt=dt,
    )
    sem = get_spec(block_type).semantics(actor, ctx)
    state = sem.init_state()
    outputs = []
    for inputs in input_seq:
        result = sem.output(state, tuple(inputs))
        outputs.append(result.outputs[0] if result.outputs else None)
        state = sem.update(state, tuple(inputs), result.outputs)
    return outputs


class TestRelationalAndLogic:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("==", 3, 3, 1), ("==", 3, 4, 0),
        ("!=", 3, 4, 1), ("<", 3, 4, 1), ("<=", 4, 4, 1),
        (">", 5, 4, 1), (">=", 3, 4, 0),
    ])
    def test_relational(self, op, a, b, expected):
        res, _, _ = run_actor("RelationalOperator", (a, b),
                              in_dtypes=(I32, I32), out_dtype=BOOL, operator=op)
        assert res.outputs == (expected,)

    def test_relational_mixed_types_exact(self):
        res, _, _ = run_actor("RelationalOperator", (2**53 + 1, float(2**53)),
                              in_dtypes=(I32, F64), out_dtype=BOOL, operator=">")
        assert res.outputs == (1,)  # exact comparison, no rounding

    @pytest.mark.parametrize("op,values,expected", [
        ("AND", (1, 1, 1), 1), ("AND", (1, 0, 1), 0),
        ("OR", (0, 0, 0), 0), ("OR", (0, 2, 0), 1),
        ("NAND", (1, 1), 0), ("NOR", (0, 0), 1),
        ("XOR", (1, 1, 1), 1), ("XOR", (1, 1, 0), 0),
        ("NOT", (0,), 1), ("NOT", (7,), 0),
    ])
    def test_logic(self, op, values, expected):
        res, _, _ = run_actor("Logic", values,
                              in_dtypes=(I32,) * len(values),
                              out_dtype=BOOL, operator=op)
        assert res.outputs == (expected,)

    def test_compare_to_constant(self):
        res, _, _ = run_actor("CompareToConstant", (10,), in_dtypes=(I32,),
                              out_dtype=BOOL, operator=">",
                              params={"constant": 5})
        assert res.outputs == (1,)

    def test_compare_to_zero(self):
        res, _, _ = run_actor("CompareToZero", (-1,), in_dtypes=(I32,),
                              out_dtype=BOOL, operator="<")
        assert res.outputs == (1,)


class TestControl:
    def test_switch_branches(self):
        res, _, _ = run_actor("Switch", (10, 1, 20), in_dtypes=(I32,) * 3,
                              out_dtype=I32, params={"threshold": 1})
        assert res.outputs == (10,) and res.branch == 0
        res, _, _ = run_actor("Switch", (10, 0, 20), in_dtypes=(I32,) * 3,
                              out_dtype=I32, params={"threshold": 1})
        assert res.outputs == (20,) and res.branch == 1

    def test_switch_casts_selected_input(self):
        res, _, _ = run_actor("Switch", (300, 1, 0), in_dtypes=(I32, I32, I32),
                              out_dtype=I8, params={"threshold": 1})
        assert res.outputs == (44,) and res.flags.overflow

    def test_multiport_switch(self):
        res, _, _ = run_actor("MultiportSwitch", (1, 10, 20, 30),
                              in_dtypes=(I32,) * 4, out_dtype=I32)
        assert res.outputs == (20,) and res.branch == 1 and not res.flags

    def test_multiport_switch_clamps_and_flags(self):
        res, _, _ = run_actor("MultiportSwitch", (9, 10, 20, 30),
                              in_dtypes=(I32,) * 4, out_dtype=I32)
        assert res.outputs == (30,) and res.flags.out_of_bounds
        res, _, _ = run_actor("MultiportSwitch", (-1, 10, 20, 30),
                              in_dtypes=(I32,) * 4, out_dtype=I32)
        assert res.outputs == (10,) and res.flags.out_of_bounds


class TestMemory:
    def test_unit_delay(self):
        outs = run_stateful("UnitDelay", [(1,), (2,), (3,)],
                            in_dtypes=(I32,), out_dtype=I32,
                            params={"initial": 9})
        assert outs == [9, 1, 2]

    def test_delay_n(self):
        outs = run_stateful("Delay", [(i,) for i in range(1, 6)],
                            in_dtypes=(I32,), out_dtype=I32,
                            params={"length": 3, "initial": 0})
        assert outs == [0, 0, 0, 1, 2]

    def test_accumulator(self):
        outs = run_stateful("Accumulator", [(5,), (5,), (5,)],
                            in_dtypes=(I32,), out_dtype=I32,
                            params={"initial": 1})
        assert outs == [6, 11, 16]

    def test_discrete_integrator_forward_euler(self):
        outs = run_stateful("DiscreteIntegrator", [(2.0,)] * 3,
                            in_dtypes=(F64,), out_dtype=F64,
                            params={"gain": 0.5, "initial": 1.0})
        assert outs == [1.0, 2.0, 3.0]

    def test_discrete_derivative(self):
        outs = run_stateful("DiscreteDerivative", [(1.0,), (3.0,), (6.0,)],
                            in_dtypes=(F64,), out_dtype=F64, params={})
        assert outs == [1.0, 2.0, 3.0]

    def test_discrete_filter(self):
        outs = run_stateful("DiscreteFilter", [(1.0,)] * 3,
                            in_dtypes=(F64,), out_dtype=F64,
                            params={"b0": 0.5, "a1": 0.5})
        assert outs == [0.5, 0.75, 0.875]

    def test_rate_limiter(self):
        outs = run_stateful("RateLimiter", [(10.0,), (10.0,), (-10.0,)],
                            in_dtypes=(F64,), out_dtype=F64,
                            params={"rising": 1.0, "falling": 2.0})
        assert outs == [1.0, 2.0, 0.0]

    def test_zero_order_hold_is_identity(self):
        res, _, _ = run_actor("ZeroOrderHold", (7,), in_dtypes=(I32,), out_dtype=I32)
        assert res.outputs == (7,)


class TestSources:
    def test_constant_conforms_to_dtype(self):
        res, _, _ = run_actor("Constant", (), out_dtype=I8, params={"value": 300})
        assert res.outputs == (44,)

    def test_clock(self):
        outs = run_stateful("Clock", [()] * 3, out_dtype=F64, dt=0.5)
        assert outs == [0.0, 0.5, 1.0]

    def test_counter_wraps(self):
        outs = run_stateful("Counter", [()] * 5, out_dtype=I32,
                            params={"limit": 3})
        assert outs == [0, 1, 2, 0, 1]

    def test_step_source(self):
        outs = run_stateful("StepSource", [()] * 4, out_dtype=I32,
                            params={"at": 2, "before": 5, "after": 9})
        assert outs == [5, 5, 9, 9]

    def test_pulse_generator(self):
        outs = run_stateful("PulseGenerator", [()] * 6, out_dtype=I32,
                            params={"period": 3, "duty": 1, "amplitude": 4})
        assert outs == [4, 0, 0, 4, 0, 0]

    def test_sine_wave(self):
        outs = run_stateful("SineWave", [()] * 2, out_dtype=F64,
                            params={"frequency": 0.25, "amplitude": 2.0})
        assert outs[0] == pytest.approx(0.0)
        assert outs[1] == pytest.approx(2.0 * math.sin(2 * math.pi * 0.25))

    def test_random_uniform_in_range_and_deterministic(self):
        outs1 = run_stateful("RandomSource", [()] * 50, out_dtype=F64,
                             params={"dist": "uniform", "lo": 2.0, "hi": 3.0,
                                     "seed": 7})
        outs2 = run_stateful("RandomSource", [()] * 50, out_dtype=F64,
                             params={"dist": "uniform", "lo": 2.0, "hi": 3.0,
                                     "seed": 7})
        assert outs1 == outs2
        assert all(2.0 <= v < 3.0 for v in outs1)
        assert len(set(outs1)) > 40

    def test_random_int_covers_range(self):
        outs = run_stateful("RandomSource", [()] * 300, out_dtype=I32,
                            params={"dist": "int", "lo": -2, "hi": 2, "seed": 9})
        assert set(outs) == {-2, -1, 0, 1, 2}

    def test_lcg_helpers(self):
        state = lcg_next(1)
        assert 0 <= state < 2**64
        assert 0.0 <= lcg_uniform(state) < 1.0


class TestLookupAndStores:
    def test_lookup1d_interpolates(self):
        params = {"breakpoints": [0.0, 1.0, 2.0], "table": [0.0, 10.0, 30.0]}
        res, _, _ = run_actor("Lookup1D", (0.5,), in_dtypes=(F64,),
                              out_dtype=F64, params=params)
        assert res.outputs == (5.0,)
        res, _, _ = run_actor("Lookup1D", (1.5,), in_dtypes=(F64,),
                              out_dtype=F64, params=params)
        assert res.outputs == (20.0,)

    def test_lookup1d_clips_ends(self):
        params = {"breakpoints": [0.0, 1.0], "table": [5.0, 6.0]}
        res, _, _ = run_actor("Lookup1D", (-10.0,), in_dtypes=(F64,),
                              out_dtype=F64, params=params)
        assert res.outputs == (5.0,)
        res, _, _ = run_actor("Lookup1D", (10.0,), in_dtypes=(F64,),
                              out_dtype=F64, params=params)
        assert res.outputs == (6.0,)

    def test_direct_lookup_oob(self):
        params = {"table": [10, 20, 30]}
        res, _, _ = run_actor("DirectLookup", (5,), in_dtypes=(I32,),
                              out_dtype=I32, params=params)
        assert res.outputs == (30,) and res.flags.out_of_bounds
        res, _, _ = run_actor("DirectLookup", (-2,), in_dtypes=(I32,),
                              out_dtype=I32, params=params)
        assert res.outputs == (10,) and res.flags.out_of_bounds

    def test_store_read_write(self):
        stores = StoreBank()
        stores.declare("mem", I32, 5)
        reader = Actor.create("R", "DataStoreRead", n_inputs=0, n_outputs=1,
                              params={"store": "mem"})
        read_sem = get_spec("DataStoreRead").semantics(
            reader, BindContext(in_dtypes=(), out_dtypes=(I32,), stores=stores)
        )
        assert read_sem.output(None, ()).outputs == (5,)

        writer = Actor.create("W", "DataStoreWrite", n_inputs=1, n_outputs=0,
                              params={"store": "mem"})
        write_sem = get_spec("DataStoreWrite").semantics(
            writer, BindContext(in_dtypes=(I32,), out_dtypes=(), stores=stores)
        )
        result = write_sem.output(None, (42,))
        assert not result.flags
        assert stores.read("mem") == 42
        assert read_sem.output(None, ()).outputs == (42,)

    def test_store_write_narrow_flags_overflow(self):
        stores = StoreBank()
        stores.declare("mem", I8, 0)
        actor = Actor.create("W", "DataStoreWrite", n_inputs=1, n_outputs=0,
                             params={"store": "mem"})
        ctx = BindContext(in_dtypes=(I32,), out_dtypes=(), stores=stores)
        sem = get_spec("DataStoreWrite").semantics(actor, ctx)
        result = sem.output(None, (300,))
        assert result.flags.overflow
        assert stores.read("mem") == 44

    def test_store_bank_reset(self):
        stores = StoreBank()
        stores.declare("mem", I32, 1)
        stores.write("mem", 99)
        stores.reset()
        assert stores.read("mem") == 1

    def test_store_bank_duplicate_declare(self):
        from repro.model.errors import ValidationError

        stores = StoreBank()
        stores.declare("mem", I32, 0)
        with pytest.raises(ValidationError):
            stores.declare("mem", I16, 0)

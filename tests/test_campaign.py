"""Test campaigns: accumulation, saturation, diagnostic attribution."""

from __future__ import annotations

import pytest

from repro.campaign import run_campaign
from repro.coverage import Metric
from repro.diagnosis import DiagnosticKind
from repro.dtypes import I32
from repro.model import ModelBuilder
from repro.schedule import preprocess


def _prog():
    """A model whose coverage needs several random cases at tiny step
    budgets: a rare branch plus an eventually-wrapping accumulator."""
    b = ModelBuilder("Camp")
    x = b.inport("X", dtype=I32)
    rare = b.block("CompareToConstant", "Rare", [x], operator=">",
                   params={"constant": 95})
    sub = b.subsystem("RareBlock", inputs=[x])
    sub.inner.gain("Boost", sub.input_ref(0), 3)
    sub.set_enable(rare)
    acc = b.accumulator("Acc", b.abs_("Mag", x), dtype=I32)
    b.outport("Y", acc)
    return preprocess(b.build())


class TestCampaign:
    def test_accumulates_across_cases(self):
        prog = _prog()
        outcome = run_campaign(prog, engine="sse", steps=6, max_cases=10,
                               plateau_patience=3)
        assert outcome.n_cases >= 2
        assert outcome.cases[0].new_points > 0
        total_new = sum(case.new_points for case in outcome.cases)
        covered = sum(outcome.merged.bitmaps[m].count() for m in Metric)
        assert total_new == covered

    def test_saturation_stops_early(self):
        prog = _prog()
        outcome = run_campaign(prog, engine="sse", steps=5_000, max_cases=10,
                               plateau_patience=2)
        assert outcome.saturated
        assert outcome.n_cases < 10
        assert outcome.cases[-1].new_points == 0

    def test_diagnostics_attributed_to_first_seed(self):
        prog = _prog()
        # 100 avg magnitude * 50k steps ~ 5e6 << 2^31: no wrap; use more
        # steps so the accumulator wraps within the first case.
        outcome = run_campaign(prog, engine="accmos", steps=50_000_000,
                               max_cases=2, plateau_patience=2)
        wraps = [(e, seed) for e, seed in outcome.diagnostics
                 if e.kind is DiagnosticKind.WRAP_ON_OVERFLOW]
        assert wraps and wraps[0][1] == 1  # first seed exposed it
        # The same event from later cases is not re-reported.
        assert len(wraps) == 1

    def test_summary_text(self):
        prog = _prog()
        outcome = run_campaign(prog, engine="sse", steps=100, max_cases=3,
                               plateau_patience=3)
        text = outcome.summary()
        assert "case(s)" in text and "Actor:" in text

    def test_validation(self):
        prog = _prog()
        with pytest.raises(ValueError, match="max_cases"):
            run_campaign(prog, max_cases=0)
        with pytest.raises(ValueError, match="plateau_patience"):
            run_campaign(prog, plateau_patience=0)

    def test_engine_without_coverage_rejected(self):
        prog = _prog()
        with pytest.raises(ValueError, match="no coverage"):
            run_campaign(prog, engine="sse_rac", steps=5, max_cases=1)

    def test_steps_and_options_conflict_rejected(self):
        from repro.engines.base import SimulationOptions

        prog = _prog()
        with pytest.raises(ValueError, match="not both"):
            run_campaign(prog, steps=100,
                         options=SimulationOptions(steps=100))

    def test_options_alone_is_honored(self):
        from repro.engines.base import SimulationOptions

        prog = _prog()
        outcome = run_campaign(prog, engine="sse", max_cases=2,
                               plateau_patience=10,
                               options=SimulationOptions(steps=7))
        assert all(case.steps_run == 7 for case in outcome.cases)

    def test_coverage_curve_is_per_metric(self):
        """Regression: the curve must track only the requested metric,
        not the all-metric total."""
        prog = _prog()
        outcome = run_campaign(prog, engine="sse", steps=6, max_cases=8,
                               plateau_patience=100)
        for metric in Metric:
            curve = outcome.coverage_curve(metric)
            assert len(curve) == outcome.n_cases
            assert all(b >= a for a, b in zip(curve, curve[1:]))
            # The curve ends at exactly this metric's covered count.
            assert curve[-1] == outcome.merged.bitmaps[metric].count()
        # Per-metric new points decompose each case's total.
        for case in outcome.cases:
            assert sum(case.new_points_by_metric.values()) == case.new_points
        # The summed curves reproduce the all-metric cumulative totals.
        summed = [
            sum(outcome.coverage_curve(m)[i] for m in Metric)
            for i in range(outcome.n_cases)
        ]
        total, expected = 0, []
        for case in outcome.cases:
            total += case.new_points
            expected.append(total)
        assert summed == expected


class TestCampaignCli:
    def test_command_runs(self, capsys):
        from repro.cli import main

        assert main(["campaign", "bench:SPV", "--engine", "accmos",
                     "--steps", "2000", "--cases", "3", "--patience", "2",
                     "--uncovered", "5"]) == 0
        out = capsys.readouterr().out
        assert "campaign:" in out
        assert "new points" in out

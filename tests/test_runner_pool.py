"""Job runner: outcomes, retries, timeouts, pool ordering."""

from __future__ import annotations

import pytest

import repro.engines.api as engines_api
from repro.dtypes import I32
from repro.engines.base import SimulationOptions
from repro.model import ModelBuilder
from repro.model.errors import SimulationError, SimulationTimeout
from repro.runner import (
    ArtifactCache,
    JobResult,
    SimulationJob,
    run_job,
    run_jobs,
)
from repro.runner import jobs as jobs_mod
from repro.schedule import preprocess

from conftest import requires_cc


def _prog():
    b = ModelBuilder("Jobs")
    x = b.inport("X", dtype=I32)
    acc = b.accumulator("Acc", x, dtype=I32)
    b.outport("Y", acc)
    return preprocess(b.build())


class TestRunJob:
    def test_sse_job_ok(self):
        result = run_job(
            SimulationJob(prog=_prog(), seed=3, engine="sse",
                          options=SimulationOptions(steps=25))
        )
        assert result.ok and result.outcome == "ok"
        assert result.attempts == 1
        assert result.result.steps_run == 25
        assert result.timings["execute"] > 0
        assert result.total_seconds > 0

    @requires_cc
    def test_accmos_job_phase_timings_and_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        job = SimulationJob(prog=_prog(), seed=3,
                            options=SimulationOptions(steps=25))
        first = run_job(job, cache=cache)
        assert first.ok and not first.cache_hit
        assert set(first.timings) == {"codegen", "compile", "execute", "parse"}
        second = run_job(job, cache=cache)
        assert second.ok and second.cache_hit
        stats = cache.stats()
        assert (stats.misses, stats.hits) == (1, 1)
        assert second.result.checksums == first.result.checksums

    @requires_cc
    def test_timeout_reported_not_retried(self, tmp_path):
        job = SimulationJob(prog=_prog(),
                            options=SimulationOptions(steps=500_000_000))
        result = run_job(job, cache=ArtifactCache(tmp_path / "cache"),
                         timeout_seconds=0.05, retries=3)
        assert result.outcome == "timeout"
        assert result.attempts == 1  # a retry would burn the same budget
        assert isinstance(result.exception, SimulationTimeout)
        assert "wall-clock" in result.error

    def test_transient_failure_retried_with_backoff(self, monkeypatch):
        calls = {"n": 0}
        real = engines_api.simulate

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise SimulationError("transient: child OOM-killed")
            return real(*args, **kwargs)

        monkeypatch.setattr(engines_api, "simulate", flaky)
        sleeps = []
        result = run_job(
            SimulationJob(prog=_prog(), engine="sse",
                          options=SimulationOptions(steps=5)),
            retries=2, backoff_seconds=0.01, _sleep=sleeps.append,
        )
        assert result.ok and result.attempts == 2
        assert sleeps == [0.01]

    def test_retries_exhausted_reports_failed(self, monkeypatch):
        def always_broken(*args, **kwargs):
            raise SimulationError("persistent")

        monkeypatch.setattr(engines_api, "simulate", always_broken)
        sleeps = []
        result = run_job(
            SimulationJob(prog=_prog(), engine="sse",
                          options=SimulationOptions(steps=5)),
            retries=2, backoff_seconds=0.01, _sleep=sleeps.append,
        )
        assert result.outcome == "failed"
        assert result.attempts == 3
        assert sleeps == [0.01, 0.02]  # exponential backoff

    def test_non_transient_failure_not_retried(self, monkeypatch):
        def broken(*args, **kwargs):
            raise ValueError("a bug, not bad luck")

        monkeypatch.setattr(engines_api, "simulate", broken)
        result = run_job(
            SimulationJob(prog=_prog(), engine="sse",
                          options=SimulationOptions(steps=5)),
            retries=5, _sleep=lambda s: pytest.fail("must not sleep"),
        )
        assert result.outcome == "failed" and result.attempts == 1
        assert "ValueError" in result.error

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            run_job(SimulationJob(prog=_prog(), engine="sse"), retries=-1)


class TestRunJobs:
    def _jobs(self, n=4, steps=10):
        prog = _prog()
        return [
            SimulationJob(prog=prog, seed=seed, engine="sse",
                          options=SimulationOptions(steps=steps))
            for seed in range(1, n + 1)
        ]

    def test_results_in_submission_order(self):
        results = run_jobs(self._jobs(6), workers=3)
        assert [r.seed for r in results] == [1, 2, 3, 4, 5, 6]
        assert all(isinstance(r, JobResult) and r.ok for r in results)

    def test_single_worker_runs_inline(self):
        results = run_jobs(self._jobs(2), workers=1)
        assert [r.seed for r in results] == [1, 2]

    def test_process_mode(self):
        results = run_jobs(self._jobs(3), workers=2, mode="process",
                           cache=False)
        assert [r.seed for r in results] == [1, 2, 3]
        assert all(r.ok for r in results)
        checks = [r.result.checksums for r in results]
        assert len({tuple(sorted(c.items())) for c in checks}) == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            run_jobs(self._jobs(2), workers=0)
        with pytest.raises(ValueError, match="mode"):
            run_jobs(self._jobs(2), mode="fiber")

    @requires_cc
    def test_one_compile_serves_identical_jobs(self, tmp_path):
        """Identical (source, flags) jobs across a wave: 1 miss, N-1 hits."""
        cache = ArtifactCache(tmp_path / "cache")
        prog = _prog()
        opts = SimulationOptions(steps=10)
        jobs = [
            SimulationJob(prog=prog, seed=7, options=opts)
            for _ in range(4)
        ]
        results = run_jobs(jobs, workers=1, cache=cache)
        assert all(r.ok for r in results)
        stats = cache.stats()
        assert (stats.misses, stats.hits) == (1, 3)


@requires_cc
class TestExecuteTimeout:
    def test_execute_timeout_kills_and_raises(self, tmp_path):
        from repro.codegen import generate_c_program
        from repro.codegen.driver import compile_c_program
        from repro.instrument import build_plan
        from repro.stimuli import default_stimuli

        prog = _prog()
        options = SimulationOptions(steps=500_000_000)
        plan = build_plan(prog)
        source, layout = generate_c_program(
            prog, plan, default_stimuli(prog), options
        )
        compiled = compile_c_program(source, layout, workdir=tmp_path)
        with pytest.raises(SimulationTimeout, match="wall-clock"):
            compiled.execute(timeout_seconds=0.05)

    def test_execute_without_timeout_still_works(self, tmp_path):
        from repro.codegen import generate_c_program
        from repro.codegen.driver import compile_c_program
        from repro.instrument import build_plan
        from repro.stimuli import default_stimuli

        prog = _prog()
        options = SimulationOptions(steps=10)
        plan = build_plan(prog)
        source, layout = generate_c_program(
            prog, plan, default_stimuli(prog), options
        )
        compiled = compile_c_program(source, layout, workdir=tmp_path)
        assert "steps_run 10" in compiled.execute()

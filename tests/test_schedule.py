"""Unit tests for preprocessing: flattening, execution order, type
inference."""

from __future__ import annotations

import pytest

from repro.dtypes import BOOL, F64, I16, I32
from repro.model import ModelBuilder
from repro.model.errors import ScheduleError, TypeInferenceError, ValidationError
from repro.schedule import EvalGuard, ExecActor, flatten, preprocess
from repro.schedule.order import compute_execution_order
from repro.schedule.typeinfer import infer_types


def _positions(prog):
    return {
        node: i for i, node in enumerate(prog.order)
    }


class TestFlatten:
    def test_plumbing_is_aliased_away(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        sub = b.subsystem("S", inputs=[x])
        g = sub.inner.gain("G", sub.input_ref(0), 2)
        y = sub.set_output(g)
        b.outport("Y", y)
        prog = preprocess(b.build())
        # Flat actors: X inport, G, Y outport — the boundary ports vanish.
        assert sorted(fa.path for fa in prog.actors) == ["M_S_G", "M_X", "M_Y"]
        # And the Y outport reads G's signal directly.
        outport = prog.actor_by_path("M_Y")
        gain = prog.actor_by_path("M_S_G")
        assert outport.input_sids[0] == gain.output_sids[0]

    def test_signal_names(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        b.outport("Y", b.gain("G", x, 2))
        prog = preprocess(b.build())
        names = {s.name for s in prog.signals}
        assert names == {"M_X_out", "M_G_out"}

    def test_fanout_shares_one_signal(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        b.outport("A", b.gain("G1", x, 2))
        b.outport("B", b.gain("G2", x, 3))
        prog = preprocess(b.build())
        g1 = prog.actor_by_path("M_G1")
        g2 = prog.actor_by_path("M_G2")
        assert g1.input_sids == g2.input_sids

    def test_guard_chain_for_nested_enables(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        outer = b.subsystem("Outer", inputs=[x])
        inner = outer.inner.subsystem("Inner", inputs=[outer.input_ref(0)])
        inner.inner.gain("Deep", inner.input_ref(0), 2)
        inner.set_enable(
            outer.inner.relational("E2", ">", outer.input_ref(0),
                                   outer.inner.constant("C5", 5))
        )
        outer.set_enable(b.relational("E1", ">", x, b.constant("C0", 0)))
        prog = preprocess(b.build())
        assert len(prog.guards) == 2
        deep = prog.actor_by_path("M_Outer_Inner_Deep")
        chain = prog.guard_chain(deep.guard)
        assert [g.path for g in chain] == ["M_Outer", "M_Outer_Inner"]

    def test_enabled_subsystem_without_wire_rejected(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        sub = b.subsystem("S", inputs=[x])
        sub.inner.block("EnablePort", "Enable", n_outputs=0)
        sub.inner.terminator("T", sub.input_ref(0))
        with pytest.raises(ValidationError):
            preprocess(b.build())

    def test_duplicate_store_across_scopes_rejected(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        b.data_store("mem", dtype=I32)
        sub = b.subsystem("S", inputs=[x])
        sub.inner.data_store("mem", dtype=I32)
        sub.inner.terminator("T", sub.input_ref(0))
        with pytest.raises(ValidationError, match="more than one scope"):
            preprocess(b.build())

    def test_merge_src_guards_recorded(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        en = b.relational("E", ">", x, b.constant("C", 0))
        sub = b.subsystem("S", inputs=[x])
        inner = sub.inner.gain("G", sub.input_ref(0), 2)
        o = sub.set_output(inner)
        sub.set_enable(en)
        merged = b.merge("Mg", [o, x], dtype=I32)
        b.outport("Y", merged)
        prog = preprocess(b.build())
        mg = prog.actor_by_path("M_Mg")
        assert mg.merge_src_guards == (0, None)


class TestExecutionOrder:
    def test_producers_precede_direct_feedthrough_consumers(self):
        from repro.actors.registry import get_spec

        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        g1 = b.gain("G1", x, 2)
        g2 = b.gain("G2", g1, 3)
        b.outport("Y", g2)
        prog = preprocess(b.build())
        pos = _positions(prog)
        for fa in prog.actors:
            if not get_spec(fa.block_type).direct_feedthrough:
                continue
            for sid in fa.input_sids:
                producer = prog.signals[sid].producer
                assert pos[ExecActor(producer)] < pos[ExecActor(fa.index)]

    def test_algebraic_loop_detected(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        # A -> B -> A through direct feedthrough.
        b.block("Sum", "A", [x, ("B", 0)], operator="++", out_dtype=I32)
        b.block("Gain", "B", [("A", 0)], params={"gain": 1}, out_dtype=I32)
        with pytest.raises(ScheduleError, match="algebraic loop"):
            preprocess(b.build())

    def test_unit_delay_breaks_loop(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        # x + delay(sum) feedback: schedulable.
        s = b.block("Sum", "S", [x, ("D", 0)], operator="++", out_dtype=I32)
        b.block("UnitDelay", "D", [s], params={"initial": 0}, out_dtype=I32)
        b.outport("Y", s)
        prog = preprocess(b.build())
        assert len(prog.order) == len(prog.actors)

    def test_guard_eval_precedes_guarded_actors(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        en = b.relational("E", ">", x, b.constant("C", 0))
        sub = b.subsystem("S", inputs=[x])
        sub.inner.gain("G", sub.input_ref(0), 2)
        sub.set_enable(en)
        prog = preprocess(b.build())
        pos = _positions(prog)
        guarded = prog.actor_by_path("M_S_G")
        assert pos[EvalGuard(0)] < pos[ExecActor(guarded.index)]
        enable = prog.actor_by_path("M_E")
        assert pos[ExecActor(enable.index)] < pos[EvalGuard(0)]

    def test_store_reads_precede_writes(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        store = b.data_store("mem", dtype=I32)
        value = b.ds_read("Rd", store)
        b.ds_write("Wr", store, b.add("A", value, x, dtype=I32))
        b.outport("Y", value)
        prog = preprocess(b.build())
        pos = _positions(prog)
        rd = prog.actor_by_path("M_Rd")
        wr = prog.actor_by_path("M_Wr")
        assert pos[ExecActor(rd.index)] < pos[ExecActor(wr.index)]

    def test_order_is_deterministic(self):
        from repro.benchmarks import build_benchmark

        p1 = preprocess(build_benchmark("CSEV"))
        p2 = preprocess(build_benchmark("CSEV"))
        assert p1.order == p2.order


class TestTypeInference:
    def test_propagation_through_chain(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I16)
        g = b.gain("G", x, 2)
        a = b.abs_("A", g)
        b.outport("Y", a)
        prog = preprocess(b.build())
        assert prog.signals[prog.actor_by_path("M_A").output_sids[0]].dtype is I16

    def test_promotion_in_sum(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I16)
        y = b.inport("Y", dtype=I32)
        s = b.add("S", x, y)
        b.outport("Z", s)
        prog = preprocess(b.build())
        assert prog.signals[prog.actor_by_path("M_S").output_sids[0]].dtype is I32

    def test_float_wins(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        y = b.inport("Y", dtype=F64)
        s = b.mul("P", x, y)
        b.outport("Z", s)
        prog = preprocess(b.build())
        assert prog.signals[prog.actor_by_path("M_P").output_sids[0]].dtype is F64

    def test_relational_is_bool(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        r = b.relational("R", ">", x, x)
        b.outport("Y", r)
        prog = preprocess(b.build())
        assert prog.signals[prog.actor_by_path("M_R").output_sids[0]].dtype is BOOL

    def test_store_read_takes_store_dtype(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        store = b.data_store("mem", dtype=I16)
        value = b.ds_read("Rd", store)
        b.ds_write("Wr", store, x)
        b.outport("Y", value)
        prog = preprocess(b.build())
        assert prog.signals[prog.actor_by_path("M_Rd").output_sids[0]].dtype is I16

    def test_unpinned_root_inport_rejected(self):
        b = ModelBuilder("M")
        b.block("Inport", "X", params={"port_index": 0})
        b.outport("Y", ("X", 0))
        with pytest.raises(TypeInferenceError, match="must pin"):
            preprocess(b.build())

    def test_untyped_feedback_loop_rejected(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        # delay with no pinned dtype in a feedback loop: uninferable.
        s = b.block("Sum", "S", [x, ("D", 0)], operator="++")
        b.block("UnitDelay", "D", [s], params={"initial": 0})
        b.outport("Y", s)
        with pytest.raises(TypeInferenceError, match="pin a dtype"):
            preprocess(b.build())

    def test_dtc_requires_pinned_dtype(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        b.block("DataTypeConversion", "C", [x])
        with pytest.raises(ValidationError, match="pin"):
            preprocess(b.build())

    def test_post_inference_revalidation_catches_conflicts(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=F64)
        # Bitwise on a float signal: only detectable once types resolve.
        b.bitwise("B", "AND", [x, x])
        with pytest.raises(ValidationError, match="integer type"):
            preprocess(b.build())

    def test_math_pinned_integer_output_rejected(self):
        b = ModelBuilder("M")
        x = b.inport("X", dtype=F64)
        b.math("E", "exp", x, dtype=None)
        b.block("Math", "L", [x], operator="log", out_dtype=I32)
        with pytest.raises(ValidationError, match="float"):
            preprocess(b.build())

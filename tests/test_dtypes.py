"""Unit and property tests for the dtype lattice and checked arithmetic."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dtypes import (
    BOOL, F32, F64, I8, I16, I32, I64, U8, U16, U32, U64,
    DType, INTEGER_DTYPES, promote, wrap,
    checked_add, checked_cast, checked_div, checked_mod, checked_mul,
    checked_neg, checked_sub, coerce_float,
)
from repro.dtypes.arith import ArithFlags, _trunc_div, _trunc_mod


# ----------------------------------------------------------------------
# DType basics
# ----------------------------------------------------------------------
class TestDTypeProperties:
    def test_bits(self):
        assert I8.bits == 8 and U8.bits == 8
        assert I16.bits == 16 and U16.bits == 16
        assert I32.bits == 32 and F32.bits == 32
        assert I64.bits == 64 and U64.bits == 64 and F64.bits == 64

    def test_signedness(self):
        assert I8.is_signed and I64.is_signed
        assert not U8.is_signed and not U64.is_signed
        assert F32.is_signed and F64.is_signed
        assert not BOOL.is_signed

    def test_classification(self):
        assert I32.is_integer and not I32.is_float and not I32.is_bool
        assert F64.is_float and not F64.is_integer
        assert BOOL.is_bool and not BOOL.is_integer and not BOOL.is_float

    def test_ranges(self):
        assert I8.min_value == -128 and I8.max_value == 127
        assert U8.min_value == 0 and U8.max_value == 255
        assert I32.min_value == -(2**31) and I32.max_value == 2**31 - 1
        assert U64.max_value == 2**64 - 1
        assert BOOL.min_value == 0 and BOOL.max_value == 1

    def test_float_has_no_integer_range(self):
        with pytest.raises(ValueError):
            _ = F64.min_value
        with pytest.raises(ValueError):
            _ = F32.max_value

    def test_c_names(self):
        assert I32.c_name == "int32_t"
        assert U16.c_name == "uint16_t"
        assert F32.c_name == "float"
        assert F64.c_name == "double"
        assert BOOL.c_name == "uint8_t"

    def test_short_names_roundtrip_through_parse(self):
        for dt in DType:
            assert DType.parse(dt.short_name) is dt
            if dt is not BOOL:  # 'uint8_t' is U8's spelling, not BOOL's
                assert DType.parse(dt.c_name) is dt

    def test_parse_aliases(self):
        assert DType.parse("double") is F64
        assert DType.parse("single") is F32
        assert DType.parse("boolean") is BOOL
        assert DType.parse("short int") is I16
        assert DType.parse("unsigned char") is U8
        assert DType.parse(" Int32 ") is I32  # trims and lowercases

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown data type"):
            DType.parse("quadword")


class TestPromote:
    def test_identity(self):
        for dt in DType:
            assert promote(dt, dt) is dt

    def test_float_wins(self):
        assert promote(I32, F64) is F64
        assert promote(F32, I64) is F32
        assert promote(F32, F64) is F64

    def test_wider_integer_wins(self):
        assert promote(I8, I32) is I32
        assert promote(U16, U64) is U64

    def test_equal_width_signed_wins(self):
        assert promote(I32, U32) is I32
        assert promote(U64, I64) is I64

    def test_bool_defers(self):
        assert promote(BOOL, I16) is I16
        assert promote(F64, BOOL) is F64


# ----------------------------------------------------------------------
# wrap
# ----------------------------------------------------------------------
class TestWrap:
    def test_identity_in_range(self):
        assert wrap(100, I8) == 100
        assert wrap(-128, I8) == -128
        assert wrap(255, U8) == 255

    def test_wraps_above(self):
        assert wrap(128, I8) == -128
        assert wrap(256, U8) == 0
        assert wrap(2**31, I32) == -(2**31)

    def test_wraps_below(self):
        assert wrap(-129, I8) == 127
        assert wrap(-1, U8) == 255
        assert wrap(-(2**63) - 1, I64) == 2**63 - 1

    def test_bool(self):
        assert wrap(0, BOOL) == 0
        assert wrap(17, BOOL) == 1
        assert wrap(-3, BOOL) == 1

    def test_float_rejected(self):
        with pytest.raises(ValueError):
            wrap(1, F64)

    @given(st.integers(min_value=-(2**80), max_value=2**80))
    def test_wrap_is_mod_2n(self, value):
        for dt in (I8, U8, I32, U32, I64, U64):
            wrapped = wrap(value, dt)
            assert dt.min_value <= wrapped <= dt.max_value
            assert (wrapped - value) % (1 << dt.bits) == 0

    @given(st.integers(), st.integers())
    def test_wrap_add_homomorphic(self, a, b):
        for dt in (I16, U32):
            assert wrap(wrap(a, dt) + wrap(b, dt), dt) == wrap(a + b, dt)


# ----------------------------------------------------------------------
# checked arithmetic
# ----------------------------------------------------------------------
class TestCheckedInteger:
    def test_add_in_range(self):
        assert checked_add(3, 4, I8) == (7, ArithFlags())

    def test_add_overflow(self):
        value, flags = checked_add(127, 1, I8)
        assert value == -128 and flags.overflow

    def test_sub_underflow_unsigned(self):
        value, flags = checked_sub(0, 1, U8)
        assert value == 255 and flags.overflow

    def test_mul_overflow(self):
        value, flags = checked_mul(2**16, 2**16, I32)
        assert value == -(2**32 - 2**32) or flags.overflow  # wraps to 0
        assert value == 0 and flags.overflow

    def test_neg_int_min(self):
        value, flags = checked_neg(-128, I8)
        assert value == -128 and flags.overflow

    def test_div_truncates_toward_zero(self):
        assert checked_div(7, 2, I32)[0] == 3
        assert checked_div(-7, 2, I32)[0] == -3
        assert checked_div(7, -2, I32)[0] == -3

    def test_div_by_zero(self):
        value, flags = checked_div(5, 0, I32)
        assert value == 0 and flags.div_by_zero

    def test_div_int_min_by_minus_one(self):
        value, flags = checked_div(-(2**31), -1, I32)
        assert value == -(2**31) and flags.overflow

    def test_mod_sign_of_dividend(self):
        assert checked_mod(7, 3, I32)[0] == 1
        assert checked_mod(-7, 3, I32)[0] == -1
        assert checked_mod(7, -3, I32)[0] == 1

    def test_mod_by_zero(self):
        value, flags = checked_mod(5, 0, I32)
        assert value == 0 and flags.div_by_zero

    def test_mod_int_min_by_minus_one(self):
        value, flags = checked_mod(-(2**31), -1, I32)
        assert value == 0 and not flags

    @given(st.integers(-(10**9), 10**9), st.integers(-(10**9), 10**9))
    def test_divmod_identity(self, a, b):
        if b == 0:
            return
        q, r = _trunc_div(a, b), _trunc_mod(a, b)
        assert q * b + r == a
        assert abs(r) < abs(b)

    @given(st.integers(), st.integers())
    def test_checked_add_flag_iff_out_of_range(self, a, b):
        for dt in (I8, U16, I64):
            a_w, b_w = wrap(a, dt), wrap(b, dt)
            value, flags = checked_add(a_w, b_w, dt)
            in_range = dt.min_value <= a_w + b_w <= dt.max_value
            assert flags.overflow == (not in_range)
            assert value == wrap(a_w + b_w, dt)


class TestCheckedFloat:
    def test_add(self):
        value, flags = checked_add(1.5, 2.5, F64)
        assert value == 4.0 and not flags

    def test_overflow_to_inf_flags_non_finite(self):
        value, flags = checked_add(1.7e308, 1.7e308, F64)
        assert math.isinf(value) and flags.non_finite

    def test_f32_rounds(self):
        value, _ = checked_add(0.1, 0.2, F32)
        assert value == coerce_float(coerce_float(0.1, F32) + coerce_float(0.2, F32), F32)

    def test_div_by_zero_float(self):
        value, flags = checked_div(1.0, 0.0, F64)
        assert math.isinf(value) and value > 0 and flags.div_by_zero
        value, flags = checked_div(-1.0, 0.0, F64)
        assert math.isinf(value) and value < 0 and flags.div_by_zero
        value, flags = checked_div(0.0, 0.0, F64)
        assert math.isnan(value) and flags.div_by_zero

    def test_fmod(self):
        value, _ = checked_mod(7.5, 2.0, F64)
        assert value == math.fmod(7.5, 2.0)

    def test_fmod_by_zero(self):
        value, flags = checked_mod(1.0, 0.0, F64)
        assert math.isnan(value) and flags.div_by_zero


class TestCheckedCast:
    def test_widening_int_ok(self):
        assert checked_cast(100, I8, I64) == (100, ArithFlags())

    def test_narrowing_in_range_ok(self):
        assert checked_cast(100, I64, I8) == (100, ArithFlags())

    def test_narrowing_wraps(self):
        value, flags = checked_cast(300, I32, U8)
        assert value == 44 and flags.overflow

    def test_signed_to_unsigned_negative(self):
        value, flags = checked_cast(-1, I32, U32)
        assert value == 2**32 - 1 and flags.overflow

    def test_float_to_int_exact(self):
        assert checked_cast(42.0, F64, I32) == (42, ArithFlags())

    def test_float_to_int_truncates_with_precision_loss(self):
        value, flags = checked_cast(42.9, F64, I32)
        assert value == 42 and flags.precision_loss
        value, flags = checked_cast(-42.9, F64, I32)
        assert value == -42 and flags.precision_loss

    def test_float_to_int_out_of_range_wraps(self):
        value, flags = checked_cast(float(2**40), F64, I32)
        assert flags.overflow
        assert value == wrap(2**40, I32)

    def test_nan_to_int(self):
        value, flags = checked_cast(math.nan, F64, I32)
        assert value == 0 and flags.non_finite

    def test_inf_to_int(self):
        value, flags = checked_cast(math.inf, F64, I64)
        assert value == 0 and flags.non_finite

    def test_int_to_float_exact(self):
        assert checked_cast(2**52, I64, F64) == (float(2**52), ArithFlags())

    def test_int_to_float_precision_loss(self):
        value, flags = checked_cast(2**53 + 1, I64, F64)
        assert flags.precision_loss
        assert value == float(2**53 + 1)  # rounded

    def test_int64_max_to_float_precision_loss(self):
        _, flags = checked_cast(2**63 - 1, I64, F64)
        assert flags.precision_loss

    def test_to_bool(self):
        assert checked_cast(5, I32, BOOL) == (1, ArithFlags())
        assert checked_cast(0.0, F64, BOOL) == (0, ArithFlags())
        assert checked_cast(math.nan, F64, BOOL)[0] == 1  # nan is truthy

    def test_f64_to_f32_inf_flags(self):
        value, flags = checked_cast(1e308, F64, F32)
        assert math.isinf(value) and flags.non_finite

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_cast_i64_anywhere_matches_wrap(self, value):
        for dt in INTEGER_DTYPES:
            out, flags = checked_cast(value, I64, dt)
            assert out == wrap(value, dt)
            assert flags.overflow == (not (dt.min_value <= value <= dt.max_value))

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64))
    def test_float_to_i64_matches_spec(self, value):
        out, flags = checked_cast(value, F64, I64)
        truncated = int(value)
        assert out == wrap(truncated, I64)
        assert flags.precision_loss == (float(truncated) != value)


class TestArithFlags:
    def test_falsy_when_clear(self):
        assert not ArithFlags()

    def test_truthy_when_any_set(self):
        assert ArithFlags(overflow=True)
        assert ArithFlags(div_by_zero=True)
        assert ArithFlags(precision_loss=True)
        assert ArithFlags(non_finite=True)
        assert ArithFlags(out_of_bounds=True)

    def test_merge(self):
        merged = ArithFlags(overflow=True).merge(ArithFlags(div_by_zero=True))
        assert merged.overflow and merged.div_by_zero
        assert not merged.precision_loss

    def test_merge_with_empty_is_identity(self):
        flags = ArithFlags(non_finite=True)
        assert flags.merge(ArithFlags()) is flags
        assert ArithFlags().merge(flags) is flags


class TestCoerceFloat:
    def test_f64_identity(self):
        assert coerce_float(0.1, F64) == 0.1

    def test_f32_rounds(self):
        assert coerce_float(0.1, F32) != 0.1
        assert coerce_float(0.5, F32) == 0.5  # exactly representable

    @given(st.floats(allow_nan=False))
    def test_f32_idempotent(self, value):
        once = coerce_float(value, F32)
        assert coerce_float(once, F32) == once or math.isnan(once)

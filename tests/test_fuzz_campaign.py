"""The fuzz campaign driver, corpus persistence, and CLI front end."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.fuzz import (
    CorpusEntry,
    FuzzConfig,
    case_signature,
    generate_case,
    load_entries,
    load_entry,
    run_fuzz,
    save_entry,
)


def _plant_broken_rung(monkeypatch):
    """Make sse_ac disagree on every case that has a float output."""
    import repro.engines.api as api

    real = api.ENGINES["sse_ac"]

    def broken(prog, stimuli, options):
        result = real(prog, stimuli, options)
        result.checksums = {k: v ^ 0xBAD for k, v in result.checksums.items()}
        return result

    monkeypatch.setitem(api.ENGINES, "sse_ac", broken)


class TestCampaign:
    def test_clean_campaign_agrees(self):
        outcome = run_fuzz(FuzzConfig(
            cases=6, seed=0, rungs=("sse_ac", "sse_rac"), shrink=False,
        ))
        assert outcome.cases_run == 6
        assert outcome.divergent == 0
        assert "all rungs agree" in outcome.summary()

    def test_divergence_is_shrunk_and_persisted(self, tmp_path, monkeypatch):
        _plant_broken_rung(monkeypatch)
        corpus = tmp_path / "corpus"
        outcome = run_fuzz(FuzzConfig(
            cases=3, seed=0, rungs=("sse_ac",),
            corpus_dir=corpus, max_shrink_attempts=60,
        ))
        assert outcome.divergent >= 1
        finding = outcome.findings[0]
        assert finding.shrink_summary
        assert finding.corpus_path is not None and finding.corpus_path.exists()
        entry = load_entry(finding.corpus_path)
        assert entry.status == "open"
        assert entry.divergences, "persisted entry records what diverged"
        shrunk = finding.final_report.case
        assert shrunk.n_actors <= finding.report.case.n_actors

    def test_campaign_continues_past_divergences(self, monkeypatch):
        _plant_broken_rung(monkeypatch)
        outcome = run_fuzz(FuzzConfig(
            cases=4, seed=0, rungs=("sse_ac",), shrink=False,
        ))
        assert outcome.cases_run == 4  # one bad case doesn't stop the run

    def test_time_budget_stops_early(self):
        outcome = run_fuzz(FuzzConfig(
            cases=10_000, seed=0, rungs=("sse_ac",),
            shrink=False, time_budget=1.0,
        ))
        assert outcome.budget_exhausted
        assert outcome.cases_run < 10_000

    def test_telemetry_counters(self, monkeypatch):
        _plant_broken_rung(monkeypatch)
        with telemetry.capture() as session:
            run_fuzz(FuzzConfig(
                cases=2, seed=0, rungs=("sse_ac",),
                max_shrink_attempts=20,
            ))
        counters = session.metrics.snapshot()["counters"]
        assert counters.get("fuzz.cases") == 2
        assert counters.get("fuzz.divergences", 0) >= 1
        assert counters.get("fuzz.shrink_steps", 0) >= 1


class TestCorpus:
    def test_roundtrip(self, tmp_path):
        entry = CorpusEntry(
            case=generate_case(42), status="fixed",
            divergences=[{"rung": "accmos", "kind": "checksums", "detail": "x"}],
            note="fixed by the sign-of-zero change", fuzz_seed=42,
        )
        path = save_entry(tmp_path, entry)
        assert path.name == f"case-{case_signature(entry.case)}.json"
        again = load_entry(path)
        assert again.status == "fixed"
        assert again.fuzz_seed == 42
        assert case_signature(again.case) == case_signature(entry.case)

    def test_same_case_never_duplicates(self, tmp_path):
        entry = CorpusEntry(case=generate_case(7))
        save_entry(tmp_path, entry)
        save_entry(tmp_path, entry)
        assert len(load_entries(tmp_path)) == 1

    def test_load_entries_empty_dir(self, tmp_path):
        assert load_entries(tmp_path / "nope") == []


class TestCli:
    def test_fuzz_exit_zero_when_green(self, capsys):
        rc = main(["fuzz", "--cases", "2", "--seed", "0",
                   "--rungs", "sse_ac,sse_rac"])
        assert rc == 0
        assert "all rungs agree" in capsys.readouterr().out

    def test_fuzz_exit_one_on_divergence(self, tmp_path, monkeypatch, capsys):
        _plant_broken_rung(monkeypatch)
        rc = main(["fuzz", "--cases", "2", "--seed", "0", "--rungs", "sse_ac",
                   "--no-shrink", "--corpus-dir", str(tmp_path / "c"),
                   "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["divergent"] >= 1
        assert payload["findings"][0]["divergences"]

    def test_fuzz_rejects_unknown_rung(self, capsys):
        rc = main(["fuzz", "--cases", "1", "--rungs", "warp_drive"])
        assert rc == 2
        assert "unknown rung" in capsys.readouterr().err

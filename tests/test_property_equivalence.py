"""Property-based cross-engine equivalence on randomly generated models.

A hypothesis strategy assembles random layered dataflow models from a
broad actor palette (mixed dtypes, branches, state, casts), drives them
with random sequence stimuli, and requires the interpreted engine, the
generated-Python engine, and the generated-C engine to agree bit for bit.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import simulate
from repro.dtypes import BOOL, F32, F64, I8, I16, I32, I64, U8, U32
from repro.model.builder import ModelBuilder
from repro.schedule import preprocess
from repro.stimuli import SequenceStimulus

from conftest import HAS_CC
from helpers import assert_results_agree

INT_DTYPES = (I8, I16, I32, I64, U8, U32)
SIGNAL_DTYPES = INT_DTYPES + (F64, F32)

STEPS = 25


def _int_values(dtype):
    lo = max(dtype.min_value, -(10**6))
    hi = min(dtype.max_value, 10**6)
    return st.integers(min_value=lo, max_value=hi)


_FLOAT_VALUES = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def random_model(draw):
    """A random layered DAG model plus matching sequence stimuli."""
    b = ModelBuilder("Prop")
    refs = []  # (ref, dtype)
    stimuli = {}

    n_inports = draw(st.integers(min_value=1, max_value=3))
    for i in range(n_inports):
        dtype = draw(st.sampled_from(SIGNAL_DTYPES))
        name = f"In{i}"
        refs.append((b.inport(name, dtype=dtype), dtype))
        if dtype.is_float:
            values = draw(st.lists(_FLOAT_VALUES, min_size=1, max_size=8))
        else:
            values = draw(st.lists(_int_values(dtype), min_size=1, max_size=8))
        stimuli[name] = values

    n_actors = draw(st.integers(min_value=2, max_value=14))
    for i in range(n_actors):
        kind = draw(
            st.sampled_from(
                [
                    "sum", "product", "gain", "bias", "abs", "neg", "minmax",
                    "relational", "logic", "switch", "unit_delay",
                    "accumulator", "dtc", "saturation", "math", "constant",
                ]
            )
        )
        name = f"A{i}"
        pick = lambda: draw(st.sampled_from(refs))  # noqa: E731

        if kind == "constant":
            dtype = draw(st.sampled_from(SIGNAL_DTYPES))
            if dtype.is_float:
                value = draw(_FLOAT_VALUES)
            else:
                value = draw(_int_values(dtype))
            refs.append((b.constant(name, value, dtype=dtype), dtype))
            continue

        src, src_dt = pick()
        # Arithmetic outputs must be numeric (bool arithmetic is rejected
        # by validation), so bool sources route through a numeric dtype.
        num_dt = I32 if src_dt.is_bool else src_dt
        if kind == "sum":
            other, _ = pick()
            signs = draw(st.sampled_from(["++", "+-", "-+", "--"]))
            dtype = draw(st.sampled_from((num_dt, I32, F64)))
            refs.append((b.sum_(name, [src, other], signs=signs, dtype=dtype), dtype))
        elif kind == "product":
            other, _ = pick()
            ops = draw(st.sampled_from(["**", "*/"]))
            dtype = draw(st.sampled_from((num_dt, I32, F64)))
            refs.append((b.product(name, [src, other], ops=ops, dtype=dtype), dtype))
        elif kind == "gain":
            # Integer gains must fit the output dtype (validated statically),
            # so unsigned chains only get non-negative gains.
            choices = [2, 7, 0.5, -1.25] if not num_dt.is_signed else [2, -3, 7, 0.5, -1.25]
            k = draw(st.sampled_from(choices))
            dtype = F64 if isinstance(k, float) and not num_dt.is_float else num_dt
            refs.append((b.gain(name, src, k, dtype=dtype), dtype))
        elif kind == "bias":
            choices = [1, 9, 0.75] if not num_dt.is_signed else [1, -9, 0.75]
            k = draw(st.sampled_from(choices))
            dtype = F64 if isinstance(k, float) and not num_dt.is_float else num_dt
            refs.append((b.bias(name, src, k, dtype=dtype), dtype))
        elif kind == "abs":
            refs.append((b.abs_(name, src, dtype=num_dt), num_dt))
        elif kind == "neg":
            refs.append((b.neg(name, src, dtype=num_dt), num_dt))
        elif kind == "minmax":
            other, _ = pick()
            op = draw(st.sampled_from(["min", "max"]))
            dtype = draw(st.sampled_from((num_dt, I64, F64)))
            refs.append((b.min_max(name, op, [src, other], dtype=dtype), dtype))
        elif kind == "relational":
            other, _ = pick()
            op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
            refs.append((b.relational(name, op, src, other), BOOL))
        elif kind == "logic":
            n = draw(st.integers(min_value=1, max_value=3))
            op = (
                "NOT"
                if n == 1
                else draw(st.sampled_from(["AND", "OR", "NAND", "NOR", "XOR"]))
            )
            inputs = [pick()[0] for _ in range(n)]
            refs.append((b.logic(name, op, inputs), BOOL))
        elif kind == "switch":
            on_true, t_dt = pick()
            on_false, f_dt = pick()
            ctrl, _ = pick()
            threshold = draw(st.sampled_from([0, 1, -5]))
            dtype = draw(st.sampled_from((I32 if t_dt.is_bool else t_dt, I32, F64)))
            refs.append(
                (b.switch(name, on_true, ctrl, on_false, threshold=threshold,
                          dtype=dtype), dtype)
            )
        elif kind == "unit_delay":
            initial = 0.0 if src_dt.is_float else 0
            refs.append((b.unit_delay(name, src, initial=initial, dtype=src_dt), src_dt))
        elif kind == "accumulator":
            dtype = src_dt if src_dt.is_integer else F64
            initial = 0.0 if dtype.is_float else 0
            refs.append((b.accumulator(name, src, initial=initial, dtype=dtype), dtype))
        elif kind == "dtc":
            dtype = draw(st.sampled_from(SIGNAL_DTYPES))
            refs.append((b.dtc(name, src, dtype), dtype))
        elif kind == "saturation":
            if num_dt.is_float:
                lo, hi = -100.0, 100.0
            else:
                lo = max(num_dt.min_value, -100)
                hi = min(num_dt.max_value, 100)
            refs.append((b.saturation(name, src, lo, hi, dtype=num_dt), num_dt))
        elif kind == "math":
            op = draw(st.sampled_from(["sin", "cos", "tanh", "atan", "square"]))
            refs.append((b.math(name, op, src), F64 if not src_dt.is_float else src_dt))

    # Outputs: the last few refs.
    for i, (ref, _) in enumerate(refs[-3:]):
        b.outport(f"Out{i}", ref)
    model = b.build()
    return model, {name: SequenceStimulus(values) for name, values in stimuli.items()}


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(random_model())
def test_rac_matches_sse_on_random_models(case):
    model, stimuli = case
    prog = preprocess(model)
    reference = simulate(prog, dict(stimuli), engine="sse", steps=STEPS)
    result = simulate(prog, dict(stimuli), engine="sse_rac", steps=STEPS)
    assert_results_agree(reference, result, coverage=False, diagnostics=False)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(random_model())
def test_ac_matches_sse_on_random_models(case):
    model, stimuli = case
    prog = preprocess(model)
    reference = simulate(prog, dict(stimuli), engine="sse", steps=STEPS)
    result = simulate(prog, dict(stimuli), engine="sse_ac", steps=STEPS)
    assert_results_agree(reference, result, coverage=False, diagnostics=False)


@pytest.mark.skipif(not HAS_CC, reason="needs a C compiler")
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(random_model())
def test_accmos_matches_sse_on_random_models(case):
    model, stimuli = case
    prog = preprocess(model)
    reference = simulate(prog, dict(stimuli), engine="sse", steps=STEPS)
    result = simulate(prog, dict(stimuli), engine="accmos", steps=STEPS)
    assert_results_agree(reference, result)

"""Code generation: source structure, compilation, the result protocol,
custom predicate substitution, and the Python backend."""

from __future__ import annotations

import pytest

from repro import SimulationOptions, simulate
from repro.codegen import generate_c_program, generate_py_step
from repro.codegen.driver import compile_c_program, find_c_compiler, parse_result
from repro.diagnosis import CustomDiagnosis, DiagnosticKind
from repro.dtypes import F64, I16, I32
from repro.instrument import build_plan
from repro.model import ModelBuilder
from repro.model.errors import CodegenError, CompilationError, SimulationError
from repro.schedule import preprocess
from repro.stimuli import ConstantStimulus, IntRandomStimulus, default_stimuli

from conftest import requires_cc


def _prog():
    b = ModelBuilder("Gen")
    x = b.inport("X", dtype=I32)
    pos = b.relational("Pos", ">", x, b.constant("Z", 0))
    sw = b.switch("Sw", x, pos, b.neg("N", x), threshold=1)
    nw = b.dtc("Nw", b.gain("G", sw, 3, dtype=I32), I16)
    b.outport("Y", nw)
    return preprocess(b.build())


def _generate(prog=None, options=None, stimuli=None, **plan_kwargs):
    prog = prog or _prog()
    plan = build_plan(prog, **plan_kwargs)
    options = options or SimulationOptions(steps=100)
    stimuli = stimuli or default_stimuli(prog)
    source, layout = generate_c_program(prog, plan, stimuli, options)
    return prog, plan, options, source, layout


class TestGeneratedSource:
    def test_structure(self):
        _, _, _, source, _ = _generate()
        assert "int main(void)" in source
        assert "/* ---- test case import ---- */" in source
        assert "/* ---- model step (execution order) ---- */" in source
        assert "steps_run" in source

    def test_actor_comments_present(self):
        _, _, _, source, _ = _generate()
        assert "/* Gen_Sw (Switch) */" in source
        assert "/* Gen_Nw (DataTypeConversion) */" in source

    def test_condition_coverage_inside_branches(self):
        _, _, _, source, _ = _generate()
        assert "cov_cond[0] = 1" in source
        assert "cov_cond[1] = 1" in source

    def test_diagnosis_calls_present(self):
        _, _, _, source, layout = _generate()
        assert "ACC_DIAG(" in source
        paths = {path for path, _, _ in layout.diag_slots}
        assert "Gen_Nw" in paths  # the narrowing conversion

    def test_halt_label_only_when_halting(self):
        _, _, _, source, _ = _generate()
        assert "sim_halt" not in source
        options = SimulationOptions(
            steps=10, halt_on=frozenset({DiagnosticKind.WRAP_ON_OVERFLOW})
        )
        _, _, _, source, _ = _generate(options=options)
        assert "goto sim_halt;" in source

    def test_no_coverage_when_disabled(self):
        _, _, _, source, _ = _generate(coverage=False)
        assert "cov_actor" not in source

    def test_time_budget_emits_clock_check(self):
        options = SimulationOptions(steps=10, time_budget=1.0)
        _, _, _, source, _ = _generate(options=options)
        assert source.count("clock_gettime") >= 3

    def test_monitor_arrays_sized_by_limit(self):
        options = SimulationOptions(steps=10, monitor_limit=13)
        _, _, _, source, _ = _generate(options=options)
        assert "mon0_step[13]" in source

    def test_custom_predicate_substitution(self):
        prog = _prog()
        diag = CustomDiagnosis(
            actor_path="Gen_Sw", message="watch",
            c_predicate="out0 > 100 || in1 == 0",
        )
        plan = build_plan(prog, custom=[diag])
        source, layout = generate_c_program(
            prog, plan, default_stimuli(prog), SimulationOptions(steps=5)
        )
        sw = prog.actor_by_path("Gen_Sw")
        out_var = f"s{sw.output_sids[0]}"
        in1_var = f"s{sw.input_sids[1]}"
        assert f"{out_var} > 100 || {in1_var} == 0" in source

    def test_custom_without_c_predicate_rejected(self):
        prog = _prog()
        diag = CustomDiagnosis(
            actor_path="Gen_Sw", message="watch",
            predicate=lambda step, i, o: False,
        )
        plan = build_plan(prog, custom=[diag])
        with pytest.raises(CodegenError, match="no C predicate"):
            generate_c_program(
                prog, plan, default_stimuli(prog), SimulationOptions(steps=5)
            )

    def test_custom_predicate_port_out_of_range(self):
        prog = _prog()
        diag = CustomDiagnosis(
            actor_path="Gen_Sw", message="watch", c_predicate="in9 > 0"
        )
        plan = build_plan(prog, custom=[diag])
        with pytest.raises(CodegenError, match="no in9"):
            generate_c_program(
                prog, plan, default_stimuli(prog), SimulationOptions(steps=5)
            )


@requires_cc
class TestCompileAndParse:
    def test_compile_and_execute(self):
        _, plan, options, source, layout = _generate()
        compiled = compile_c_program(source, layout)
        stdout = compiled.execute()
        assert "steps_run 100" in stdout

    def test_compile_error_reported(self):
        _, _, _, _, layout = _generate()
        with pytest.raises(CompilationError, match="failed"):
            compile_c_program("this is not C;", layout)

    def test_parse_result_full(self):
        prog, plan, options, source, layout = _generate()
        compiled = compile_c_program(source, layout)
        result = parse_result(
            compiled.execute(), prog, plan, layout, options
        )
        assert result.steps_run == 100
        assert result.engine == "accmos"
        assert "Y" in result.outputs
        assert result.coverage is not None

    def test_parse_result_rejects_garbage(self):
        prog, plan, options, _, layout = _generate()
        with pytest.raises(SimulationError, match="unrecognized"):
            parse_result("???", prog, plan, layout, options)

    def test_find_c_compiler(self):
        assert find_c_compiler() is not None

    def test_workdir_artifacts_kept(self, tmp_path):
        _, _, _, source, layout = _generate()
        compiled = compile_c_program(source, layout, workdir=tmp_path)
        assert (tmp_path / "simulation.c").exists()
        assert (tmp_path / "simulation").exists()
        assert compiled.compile_seconds > 0

    def test_accmos_run_reports_extras(self):
        prog = _prog()
        result = simulate(prog, default_stimuli(prog), engine="accmos", steps=50)
        assert result.extra["compile_seconds"] > 0
        assert result.extra["source_lines"] > 100

    def test_accmos_keep_artifacts(self, tmp_path):
        from repro.engines import run_accmos

        prog = _prog()
        result = run_accmos(
            prog, default_stimuli(prog), SimulationOptions(steps=10),
            workdir=tmp_path, keep_artifacts=True,
        )
        artifacts = result.extra["artifacts"]
        assert artifacts.source_path.exists()
        assert artifacts.binary_path.exists()


class TestPyBackend:
    def test_generated_module_compiles(self):
        prog = _prog()
        source = generate_py_step(prog)
        compile(source, "<test>", "exec")

    def test_run_signature(self):
        prog = _prog()
        namespace = {}
        exec(compile(generate_py_step(prog), "<test>", "exec"), namespace)
        stim = ConstantStimulus(5)
        feeds = [lambda: stim.conform(stim.next(), I32)]
        frames = []
        steps_run, outputs = namespace["run"](4, feeds, frames.extend)
        assert steps_run == 4
        assert "Y" in outputs
        assert len(frames) == 4  # final flush delivers all frames

    def test_unknown_block_type_raises(self):
        from repro.codegen.pybackend import _PyEmit, _emit_actor
        from repro.schedule.program import FlatActor
        from repro.model.actor import Actor

        prog = _prog()
        emitter = _PyEmit(prog)
        fake = FlatActor(
            index=0, path="X", guard=None,
            actor=Actor.create("X", "Sum", n_inputs=1, operator="+"),
            input_sids=(0,), output_sids=(0,),
        )
        fake.actor.block_type = "Imaginary"
        with pytest.raises(CodegenError):
            _emit_actor(emitter, fake, [])

"""Command-line interface tests (driven through main(argv))."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.dtypes import I32
from repro.model import ModelBuilder
from repro.slx import save_model

from conftest import requires_cc


@pytest.fixture
def model_file(tmp_path):
    b = ModelBuilder("CliDemo")
    x = b.inport("X", dtype=I32)
    acc = b.accumulator("Acc", x, dtype=I32)
    b.outport("Y", acc)
    path = tmp_path / "demo.xml"
    save_model(b.build(), path)
    return str(path)


class TestInfo:
    def test_model_file(self, model_file, capsys):
        assert main(["info", model_file]) == 0
        out = capsys.readouterr().out
        assert "CliDemo" in out
        assert "#Actor      : 3" in out

    def test_bench_reference(self, capsys):
        assert main(["info", "bench:SPV"]) == 0
        out = capsys.readouterr().out
        assert "#Actor      : 131" in out
        assert "Solar PV" in out


class TestSimulate:
    def test_sse(self, model_file, capsys):
        assert main(["simulate", model_file, "--engine", "sse",
                     "--steps", "50"]) == 0
        out = capsys.readouterr().out
        assert "50/50 steps" in out
        assert "output Y" in out

    @requires_cc
    def test_accmos_json(self, model_file, capsys):
        assert main(["simulate", model_file, "--engine", "accmos",
                     "--steps", "50", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "accmos"
        assert payload["steps_run"] == 50
        assert "coverage" in payload

    def test_halt_on(self, model_file, capsys):
        assert main(["simulate", model_file, "--engine", "sse",
                     "--steps", "100000", "--seed", "3",
                     "--halt-on", "wrap_on_overflow"]) == 0
        out = capsys.readouterr().out
        # Random +-100 inputs accumulate slowly; halting may or may not
        # trigger in-budget, but the option must parse and run.
        assert "steps" in out

    def test_csv_stimuli(self, model_file, tmp_path, capsys):
        csv = tmp_path / "cases.csv"
        csv.write_text("X\n5\n5\n")
        assert main(["simulate", model_file, "--engine", "sse",
                     "--steps", "4", "--stimuli", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "output Y = 20" in out  # 5*4 accumulated


class TestCodegenCommand:
    def test_writes_file(self, model_file, tmp_path, capsys):
        out_file = tmp_path / "sim.c"
        assert main(["codegen", model_file, "-o", str(out_file)]) == 0
        text = out_file.read_text()
        assert "int main(void)" in text
        assert "CliDemo_Acc" in text

    def test_stdout(self, model_file, capsys):
        assert main(["codegen", model_file]) == 0
        assert "int main(void)" in capsys.readouterr().out


@requires_cc
class TestCompare:
    def test_engines_agree(self, model_file, capsys):
        assert main(["compare", model_file, "--steps", "100",
                     "--engines", "sse", "sse_rac", "accmos"]) == 0
        out = capsys.readouterr().out
        assert out.count("outputs agree") == 2


class TestBenchTable1:
    def test_prints_table(self, capsys):
        assert main(["bench-table1"]) == 0
        out = capsys.readouterr().out
        for name in ("CPUT", "CSEV", "UTPC"):
            assert name in out
        assert "570" in out  # LANS actor count


class TestCampaignScheduler:
    def test_timings_report_stream_scheduler(self, capsys):
        assert main(["campaign", "bench:SPV", "--engine", "sse",
                     "--steps", "300", "--cases", "4", "--patience", "100",
                     "--workers", "2", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "campaign:" in out
        assert "scheduler: stream" in out
        assert "utilization" in out

    def test_wave_scheduler_still_selectable(self, capsys):
        assert main(["campaign", "bench:SPV", "--engine", "sse",
                     "--steps", "300", "--cases", "4", "--patience", "100",
                     "--workers", "2", "--scheduler", "wave"]) == 0
        assert "campaign:" in capsys.readouterr().out

    def test_window_and_no_adaptive_flags_parse(self, capsys):
        assert main(["campaign", "bench:SPV", "--engine", "sse",
                     "--steps", "300", "--cases", "4", "--patience", "100",
                     "--workers", "2", "--window", "3",
                     "--no-adaptive", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "window 3->3" in out


class TestCacheCli:
    def test_stats_and_clear_explicit_dir(self, tmp_path, capsys):
        cache_dir = tmp_path / "artifacts"
        assert main(["cache", "stats", "--dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries   : 0" in out
        assert main(["cache", "clear", "--dir", str(cache_dir)]) == 0
        assert "cleared 0" in capsys.readouterr().out

    @requires_cc
    def test_campaign_workers_populates_cache(self, tmp_path, capsys,
                                              monkeypatch):
        from repro.runner import cache as cache_mod

        cache_dir = tmp_path / "artifacts"
        monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(cache_dir))
        monkeypatch.setattr(cache_mod, "_default_cache", None)
        monkeypatch.setattr(cache_mod, "_default_resolved", False)
        assert main(["campaign", "bench:SPV", "--steps", "300",
                     "--cases", "4", "--patience", "4",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "campaign:" in out
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(cache_dir) in out
        # the reusable (stimulus-agnostic) program maps every case of the
        # campaign to one cache key: a single compiled entry serves all 4
        assert "entries   : 1" in out

"""The generic JSON dataflow IR (§5 extensibility, implemented)."""

from __future__ import annotations

import json

import pytest

from repro import simulate
from repro.model.errors import ParseError
from repro.schedule import preprocess
from repro.slx import (
    generic_to_model,
    load_generic,
    model_to_generic,
    model_to_xml,
    save_generic,
)
from repro.stimuli import default_stimuli

from helpers import ZOO


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_zoo_models_roundtrip(self, name):
        model, _ = ZOO[name]()
        again = generic_to_model(model_to_generic(model))
        assert model_to_xml(again) == model_to_xml(model)

    def test_file_roundtrip(self, tmp_path):
        model, _ = ZOO["guarded"]()
        path = tmp_path / "model.json"
        save_generic(model, path)
        again = load_generic(path)
        assert model_to_xml(again) == model_to_xml(model)

    def test_document_shape(self):
        model, _ = ZOO["stores"]()
        document = model_to_generic(model)
        assert document["format"] == "accmos-dataflow"
        assert document["version"] == 1
        assert any(b["type"] == "DataStoreMemory" for b in document["blocks"])
        assert all(":" in w["from"] and ":" in w["to"]
                   for w in document["wires"])

    def test_imported_model_simulates_identically(self):
        model, stimuli = ZOO["control"]()
        again = generic_to_model(model_to_generic(model))
        p1, p2 = preprocess(model), preprocess(again)
        r1 = simulate(p1, stimuli(), engine="sse", steps=300)
        r2 = simulate(p2, stimuli(), engine="sse", steps=300)
        assert r1.checksums == r2.checksums
        assert r1.coverage.bitmaps == r2.coverage.bitmaps


class TestHandWrittenDocument:
    """An external tool's document: written by hand, not exported."""

    DOC = {
        "format": "accmos-dataflow",
        "version": 1,
        "name": "External",
        "scopes": ["Filter"],
        "blocks": [
            {"id": "In1", "scope": "", "type": "Inport",
             "params": {"port_index": 0}, "inputs": 0,
             "outputs": [{"dtype": "f64"}]},
            {"id": "FIn", "scope": "Filter", "type": "Inport",
             "params": {"port_index": 0}, "inputs": 0, "outputs": [{}]},
            {"id": "Smooth", "scope": "Filter", "type": "DiscreteFilter",
             "params": {"b0": 0.5, "a1": 0.5}, "inputs": 1, "outputs": [{}]},
            {"id": "FOut", "scope": "Filter", "type": "Outport",
             "params": {"port_index": 0}, "inputs": 1, "outputs": []},
            {"id": "Out1", "scope": "", "type": "Outport",
             "params": {"port_index": 0}, "inputs": 1, "outputs": []},
        ],
        "wires": [
            {"from": "In1:0", "to": "Filter:0", "scope": ""},
            {"from": "Filter:0", "to": "Out1:0", "scope": ""},
            {"from": "FIn:0", "to": "Smooth:0", "scope": "Filter"},
            {"from": "Smooth:0", "to": "FOut:0", "scope": "Filter"},
        ],
    }

    def test_imports_and_runs(self):
        model = generic_to_model(json.loads(json.dumps(self.DOC)))
        assert model.n_actors == 5 and model.n_subsystems == 1
        prog = preprocess(model)
        result = simulate(prog, default_stimuli(prog), engine="sse", steps=50)
        assert result.steps_run == 50


class TestErrors:
    def test_wrong_format(self):
        with pytest.raises(ParseError, match="not an accmos-dataflow"):
            generic_to_model({"format": "ptolemy", "version": 1, "name": "X"})

    def test_wrong_version(self):
        with pytest.raises(ParseError, match="unsupported"):
            generic_to_model({"format": "accmos-dataflow", "version": 9,
                              "name": "X"})

    def test_missing_name(self):
        with pytest.raises(ParseError, match="no model name"):
            generic_to_model({"format": "accmos-dataflow", "version": 1})

    def test_scope_before_parent(self):
        with pytest.raises(ParseError, match="before parent"):
            generic_to_model({
                "format": "accmos-dataflow", "version": 1, "name": "X",
                "scopes": ["A.B"], "blocks": [], "wires": [],
            })

    def test_unknown_block_scope(self):
        with pytest.raises(ParseError, match="unknown scope"):
            generic_to_model({
                "format": "accmos-dataflow", "version": 1, "name": "X",
                "blocks": [{"id": "G", "scope": "Ghost", "type": "Ground",
                            "inputs": 0, "outputs": [{}]}],
            })

    def test_malformed_endpoint(self):
        with pytest.raises(ParseError, match="malformed wire endpoint"):
            generic_to_model({
                "format": "accmos-dataflow", "version": 1, "name": "X",
                "blocks": [], "wires": [{"from": "nocolon", "to": "A:0"}],
            })

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ not json")
        with pytest.raises(ParseError, match="invalid JSON"):
            load_generic(path)


class TestCliConvert:
    def test_xml_to_json_and_back(self, tmp_path, capsys):
        from repro.cli import main
        from repro.slx import load_model, save_model

        model, _ = ZOO["f32"]()
        xml_path = tmp_path / "m.xml"
        save_model(model, xml_path)
        json_path = tmp_path / "m.json"
        assert main(["convert", str(xml_path), "-o", str(json_path)]) == 0
        xml2_path = tmp_path / "m2.xml"
        assert main(["convert", str(json_path), "-o", str(xml2_path)]) == 0
        assert model_to_xml(load_model(xml2_path)) == model_to_xml(model)

    def test_bench_to_json(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "spv.json"
        assert main(["convert", "bench:SPV", "-o", str(out)]) == 0
        model = load_generic(out)
        assert model.n_actors == 131

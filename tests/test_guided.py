"""repro.guided: coverage map, corpus, mutation, energy, campaign loop.

Everything here runs on the Python rungs only (no C compiler needed):
the guided loop feeds on the oracle's SSE reference coverage, which is
bit-identical to the C rungs' by the oracle invariant.
"""

from __future__ import annotations

import time

import pytest

from repro.coverage.bitmap import Bitmap
from repro.coverage.metrics import ALL_METRICS, Metric
from repro.fuzz.corpus import (
    CorpusEntry,
    divergence_signature,
    find_open_duplicate,
    save_entry,
)
from repro.fuzz.driver import case_seed, process_finding
from repro.fuzz.generate import generate_case
from repro.fuzz.oracle import Divergence, OracleReport
from repro.fuzz.shrink import shrink_case
from repro.guided import (
    CoverageMap,
    GuidedConfig,
    SeedCorpus,
    SeedEntry,
    assign_energy,
    coverage_key,
    mutants,
    replay_corpus,
    run_guided,
    schedule_round,
    seed_score,
)


def _bitmaps(**hits) -> dict[Metric, Bitmap]:
    """Tiny 4-metric bitmap set: sizes 8/4/4/4, hits per metric value."""
    sizes = {Metric.ACTOR: 8, Metric.CONDITION: 4,
             Metric.DECISION: 4, Metric.MCDC: 4}
    return {
        m: Bitmap.from_hits(sizes[m], hits.get(m.value, []))
        for m in ALL_METRICS
    }


class TestCaseSeed:
    def test_streams_are_disjoint(self):
        # Base seed s's stream never collides with base seed s+1's.
        assert case_seed(1, 0) != case_seed(0, 2**32 - 1)
        assert case_seed(0, 7) == 7
        assert case_seed(1, 0) == 2**32

    def test_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            case_seed(0, 2**32)
        with pytest.raises(ValueError):
            case_seed(0, -1)


class TestCoverageKey:
    def test_param_and_stimulus_changes_share_a_key(self):
        from dataclasses import replace

        case = generate_case(11)
        bumped = replace(case, steps=case.steps + 5, stimuli={})
        assert coverage_key(case) == coverage_key(bumped)

    def test_structure_changes_split_keys(self):
        a, b = generate_case(11), generate_case(12)
        assert coverage_key(a) != coverage_key(b)

    def test_bitmap_sizes_enter_the_key(self):
        case = generate_case(11)
        key = coverage_key(case, _bitmaps())
        assert key.endswith(":8x4x4x4")
        assert key.startswith(coverage_key(case))


class TestCoverageMap:
    def test_observe_counts_novelty_once(self):
        cm = CoverageMap()
        first = _bitmaps(actor=[0, 1], decision=[2])
        assert cm.observe("k", first) == 3
        assert cm.observe("k", first) == 0  # already accumulated
        assert cm.observe("k", _bitmaps(actor=[1, 2])) == 1  # only 2 is new
        assert cm.points() == 4

    def test_keys_are_independent(self):
        cm = CoverageMap()
        assert cm.observe("k1", _bitmaps(actor=[0])) == 1
        assert cm.observe("k2", _bitmaps(actor=[0])) == 1
        assert cm.n_keys == 2

    def test_novelty_is_read_only(self):
        cm = CoverageMap()
        cm.observe("k", _bitmaps(actor=[0]))
        probe = _bitmaps(actor=[0, 3])
        assert cm.novelty("k", probe) == 1
        assert cm.points() == 1  # unchanged
        assert cm.novelty("unseen", probe) == 2  # full count for new keys

    def test_serialization_roundtrip(self):
        cm = CoverageMap()
        cm.observe("k1", _bitmaps(actor=[0, 7], mcdc=[3]))
        cm.observe("k2", _bitmaps(condition=[1]))
        again = CoverageMap.from_dict(cm.to_dict())
        assert again == cm
        assert again.points() == cm.points()

    def test_equality_detects_single_bit_difference(self):
        a, b = CoverageMap(), CoverageMap()
        a.observe("k", _bitmaps(actor=[0]))
        b.observe("k", _bitmaps(actor=[1]))
        assert a != b


class TestMutation:
    def test_mutants_are_deterministic(self):
        case = generate_case(5)
        a = mutants(case, seed=42, count=6)
        b = mutants(case, seed=42, count=6)
        assert [m.to_dict() for m in a] == [m.to_dict() for m in b]
        assert a  # something was produced

    def test_different_seeds_diverge(self):
        case = generate_case(5)
        a = mutants(case, seed=1, count=6)
        b = mutants(case, seed=2, count=6)
        assert [m.to_dict() for m in a] != [m.to_dict() for m in b]

    def test_mutants_build_and_simulate(self):
        from repro.fuzz.generate import build_model

        case = generate_case(5)
        for mutant in mutants(case, seed=7, count=8):
            build_model(mutant)  # raises if the recipe is invalid

    def test_unknown_op_rejected(self):
        case = generate_case(5)
        with pytest.raises(ValueError):
            mutants(case, seed=1, count=1, ops=("stimulus", "nope"))

    def test_single_op_restriction_holds(self):
        # steps-only mutants differ from the parent only in step count.
        case = generate_case(5)
        for mutant in mutants(case, seed=3, count=5, ops=("steps",)):
            assert [n.to_dict() for n in mutant.nodes] == [
                n.to_dict() for n in case.nodes
            ]
            assert mutant.stimuli == case.stimuli

    def test_insert_respects_actor_ceiling(self):
        case = generate_case(5)
        for mutant in mutants(
            case, seed=9, count=10, max_actors=case.n_actors, ops=("insert",)
        ):
            assert mutant.n_actors <= case.n_actors  # ceiling => no growth


class TestEnergy:
    def _entry(self, sig: str, novel=10, fuzzed=0, child=0, cost=0.01):
        return SeedEntry(
            case=generate_case(5), key="k", novel_points=novel,
            cost_seconds=cost, times_fuzzed=fuzzed,
            child_novel_points=child, sig=sig,
        )

    def test_score_decays_with_fuzz_count(self):
        fresh = self._entry("a")
        tired = self._entry("b", fuzzed=5)
        assert seed_score(fresh) > seed_score(tired)

    def test_score_discounts_cost(self):
        cheap = self._entry("a", cost=0.01)
        costly = self._entry("b", cost=4.0)
        assert seed_score(cheap) > seed_score(costly)

    def test_first_shot_is_doubled_and_dry_halved(self):
        assert assign_energy(self._entry("a")) == 8  # base 4 x2
        assert assign_energy(self._entry("a", fuzzed=1, child=5)) == 4
        assert assign_energy(self._entry("a", fuzzed=1, child=0)) == 2

    def test_schedule_respects_budget_and_order(self):
        seeds = [self._entry(f"s{i}", novel=10 * (i + 1)) for i in range(4)]
        schedule = schedule_round(seeds, budget=10)
        assert sum(energy for _, energy in schedule) <= 10
        scores = [seed_score(e) for e, _ in schedule]
        assert scores == sorted(scores, reverse=True)

    def test_zero_budget_schedules_nothing(self):
        assert schedule_round([self._entry("a")], budget=0) == []


class TestSeedCorpus:
    def _corpus(self) -> SeedCorpus:
        corpus = SeedCorpus()
        for i, novel in enumerate((5, 40)):
            case = generate_case(20 + i)
            bitmaps = _bitmaps(actor=list(range(novel % 8)))
            key = coverage_key(case, bitmaps)
            corpus.coverage.observe(key, bitmaps)
            corpus.add(SeedEntry(
                case=case, key=key, novel_points=novel, cost_seconds=0.01,
            ))
        return corpus

    def test_duplicate_cases_rejected(self):
        corpus = SeedCorpus()
        case = generate_case(3)
        entry = SeedEntry(case=case, key="k", novel_points=1, cost_seconds=0)
        assert corpus.add(entry)
        assert not corpus.add(
            SeedEntry(case=case, key="k", novel_points=9, cost_seconds=0)
        )
        assert len(corpus) == 1

    def test_ranking_prefers_higher_yield(self):
        corpus = self._corpus()
        ranked = corpus.ranked()
        assert ranked[0].novel_points == 40

    def test_save_load_roundtrip(self, tmp_path):
        corpus = self._corpus()
        corpus.save(tmp_path)
        again = SeedCorpus.load(tmp_path)
        assert len(again) == len(corpus)
        assert {e.sig for e in again.seeds} == {e.sig for e in corpus.seeds}
        assert again.coverage == corpus.coverage
        assert again.stats()["coverage_points"] == corpus.coverage.points()

    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SeedCorpus.load(tmp_path)
        assert len(SeedCorpus.load_or_empty(tmp_path)) == 0


class TestDivergenceSignature:
    def _divs(self, detail="Y_n1: 1 vs 2"):
        return [{"rung": "accmos", "kind": "outputs", "detail": detail}]

    def test_signature_names_rung_kind_field(self):
        assert divergence_signature(self._divs()) == "accmos/outputs/Y_n1"
        assert divergence_signature([]) == ""
        errs = [{"rung": "sse_ac", "kind": "error", "detail": "Boom: x"}]
        assert divergence_signature(errs) == "sse_ac/error/"

    def test_find_open_duplicate(self, tmp_path):
        entry = CorpusEntry(
            case=generate_case(1), status="open", divergences=self._divs(),
        )
        path = save_entry(tmp_path, entry)
        assert find_open_duplicate(tmp_path, "accmos/outputs/Y_n1") == path
        assert find_open_duplicate(tmp_path, "accmos/outputs/Y_n2") is None
        assert find_open_duplicate(tmp_path, "") is None

    def test_fixed_entries_never_match(self, tmp_path):
        entry = CorpusEntry(
            case=generate_case(1), status="fixed", divergences=self._divs(),
        )
        save_entry(tmp_path, entry)
        assert find_open_duplicate(tmp_path, "accmos/outputs/Y_n1") is None

    def test_process_finding_skips_duplicates(self, tmp_path):
        def fake_report(case):
            return OracleReport(
                case=case, rungs=("sse_ac",),
                divergences=[Divergence(
                    rung="sse_ac", kind="outputs", detail="Y_n1: 1 vs 2",
                )],
            )

        first = generate_case(1)
        _, dup = process_finding(
            first, fake_report(first), seed=1, rungs=("sse_ac",),
            shrink=False, corpus_dir=tmp_path,
        )
        assert not dup
        second = generate_case(2)
        finding, dup = process_finding(
            second, fake_report(second), seed=2, rungs=("sse_ac",),
            shrink=False, corpus_dir=tmp_path,
        )
        assert dup
        assert finding.corpus_path is not None  # points at the original
        assert len(list(tmp_path.glob("case-*.json"))) == 1


class TestShrinkDeadline:
    def test_expired_deadline_stops_immediately(self):
        case = generate_case(4)
        calls = []

        def still_fails(candidate):
            calls.append(candidate)
            return True

        shrunk, stats = shrink_case(
            case, still_fails, deadline=time.perf_counter() - 1.0
        )
        assert stats.deadline_hit
        assert not calls  # budget was gone before the first attempt
        assert "[deadline]" in stats.summary()

    def test_no_deadline_keeps_old_behavior(self):
        case = generate_case(4)
        shrunk, stats = shrink_case(case, lambda c: False, max_attempts=10)
        assert not stats.deadline_hit
        assert stats.attempts > 0


class TestGuidedCampaign:
    def test_small_campaign_accumulates_coverage(self, tmp_path):
        config = GuidedConfig(
            cases=30, seed=0, rungs=("sse_ac",), round_size=10,
            corpus_dir=tmp_path / "corpus", shrink=False,
            timeout_seconds=30.0,
        )
        outcome = run_guided(config)
        assert outcome.rounds >= 1
        assert outcome.cases_run > 0
        assert outcome.novel_points > 0
        assert outcome.corpus_size > 0
        assert outcome.coverage_points == outcome.novel_points
        assert (tmp_path / "corpus" / "corpus.json").exists()

    def test_fresh_rounds_are_deterministic(self):
        # A single all-fresh round has no cost-aware scheduling in it
        # (mutant scheduling ranks by measured wall cost, which is
        # legitimately timing-dependent), so two runs must agree
        # exactly.  Mutant determinism is pinned by TestMutation.
        config = dict(
            cases=20, seed=7, rungs=("sse_ac",), round_size=20,
            shrink=False, timeout_seconds=30.0,
        )
        a = run_guided(GuidedConfig(**config))
        b = run_guided(GuidedConfig(**config))
        assert a.rounds == b.rounds == 1
        assert a.novel_points == b.novel_points
        assert a.cases_run == b.cases_run

    def test_saturation_early_stop(self):
        # Stimulus-only mutation of a tiny corpus dries up fast; the
        # campaign must stop well short of its case budget.
        config = GuidedConfig(
            cases=300, seed=3, rungs=("sse_ac",), round_size=10,
            fresh_per_round=0, mutation_ops=("stimulus",),
            saturation_rounds=2, shrink=False, timeout_seconds=30.0,
        )
        outcome = run_guided(config)
        assert outcome.saturated
        assert outcome.cases_run < config.cases

    def test_time_budget_stops_campaign(self):
        config = GuidedConfig(
            cases=10_000, seed=0, rungs=("sse_ac",), round_size=10,
            time_budget=0.5, shrink=False, timeout_seconds=30.0,
        )
        outcome = run_guided(config)
        assert outcome.budget_exhausted
        assert outcome.cases_run < config.cases

    def test_unknown_rung_rejected(self):
        with pytest.raises(ValueError):
            run_guided(GuidedConfig(rungs=("warp_drive",)))

    def test_replay_matches_bit_for_bit(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        run_guided(GuidedConfig(
            cases=25, seed=1, rungs=("sse_ac",), round_size=10,
            corpus_dir=corpus_dir, shrink=False, timeout_seconds=30.0,
        ))
        report = replay_corpus(corpus_dir, timeout_seconds=30.0)
        assert report.matched
        assert report.replayed == report.seeds > 0
        assert report.points_rebuilt == report.points_expected

    def test_resume_extends_existing_corpus(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        first = run_guided(GuidedConfig(
            cases=15, seed=2, rungs=("sse_ac",), round_size=5,
            corpus_dir=corpus_dir, shrink=False, timeout_seconds=30.0,
        ))
        second = run_guided(GuidedConfig(
            cases=15, seed=9, rungs=("sse_ac",), round_size=5,
            corpus_dir=corpus_dir, shrink=False, timeout_seconds=30.0,
        ))
        assert second.corpus_size >= first.corpus_size
        # The grown corpus still replays exactly.
        assert replay_corpus(corpus_dir, timeout_seconds=30.0).matched

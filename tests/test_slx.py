"""Model file format: round trip and parse-error handling."""

from __future__ import annotations

import pytest

from repro.dtypes import F64, I32
from repro.model import ModelBuilder
from repro.model.errors import ParseError
from repro.slx import load_model, model_to_xml, parse_model, save_model

from helpers import ZOO


def _example_model():
    b = ModelBuilder("RT")
    x = b.inport("X", dtype=I32)
    f = b.inport("F", dtype=F64)
    en = b.relational("Pos", ">", x, b.constant("Z", 0))
    sub = b.subsystem("Inner", inputs=[x])
    g = sub.inner.gain("Double", sub.input_ref(0), 2)
    y = sub.set_output(g)
    sub.set_enable(en)
    store = b.data_store("mem", dtype=I32, initial=5)
    r = b.ds_read("Rd", store)
    total = b.add("T", y, r, dtype=I32)
    b.ds_write("Wr", store, total)
    lut = b.lookup1d("Lut", f, [0.0, 1.0], [2.0, 3.0])
    b.outport("Y", total)
    b.outport("YF", lut)
    model = b.build()
    model.description = "round-trip example"
    model.metadata = {"origin": "tests"}
    return model


class TestRoundTrip:
    def test_structure_preserved(self):
        model = _example_model()
        again = parse_model(model_to_xml(model))
        assert again.name == model.name
        assert again.description == model.description
        assert again.metadata == model.metadata
        assert again.n_actors == model.n_actors
        assert again.n_subsystems == model.n_subsystems
        assert again.block_type_histogram() == model.block_type_histogram()

    def test_roundtrip_is_fixed_point(self):
        model = _example_model()
        xml1 = model_to_xml(model)
        xml2 = model_to_xml(parse_model(xml1))
        assert xml1 == xml2

    def test_params_and_operators_preserved(self):
        model = _example_model()
        again = parse_model(model_to_xml(model))
        lut = again.root.actors["Lut"]
        assert lut.params["breakpoints"] == [0.0, 1.0]
        assert lut.params["table"] == [2.0, 3.0]
        rel = again.root.actors["Pos"]
        assert rel.operator == ">"

    def test_port_dtypes_preserved(self):
        model = _example_model()
        again = parse_model(model_to_xml(model))
        assert again.root.actors["X"].outputs[0].dtype is I32
        assert again.root.actors["F"].outputs[0].dtype is F64

    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_every_zoo_model_roundtrips(self, name):
        model, _ = ZOO[name]()
        xml1 = model_to_xml(model)
        again = parse_model(xml1)
        assert model_to_xml(again) == xml1

    def test_file_roundtrip(self, tmp_path):
        model = _example_model()
        path = tmp_path / "model.xml"
        save_model(model, path)
        again = load_model(path)
        assert again.n_actors == model.n_actors

    def test_parsed_model_simulates_identically(self):
        from repro import simulate
        from repro.schedule import preprocess
        from repro.stimuli import default_stimuli

        model = _example_model()
        again = parse_model(model_to_xml(model))
        p1, p2 = preprocess(model), preprocess(again)
        r1 = simulate(p1, default_stimuli(p1), engine="sse", steps=200)
        r2 = simulate(p2, default_stimuli(p2), engine="sse", steps=200)
        assert r1.checksums == r2.checksums
        assert r1.coverage.bitmaps == r2.coverage.bitmaps


class TestParseErrors:
    def test_malformed_xml(self):
        with pytest.raises(ParseError, match="malformed"):
            parse_model("<model><unclosed>")

    def test_wrong_root(self):
        with pytest.raises(ParseError, match="expected <model>"):
            parse_model("<thing/>")

    def test_missing_name(self):
        with pytest.raises(ParseError, match="missing name"):
            parse_model("<model><actors/></model>")

    def test_missing_actors_part(self):
        with pytest.raises(ParseError, match="no actors part"):
            parse_model('<model name="M"><relationships/></model>')

    def test_missing_relationships_part(self):
        with pytest.raises(ParseError, match="no relationships part"):
            parse_model(
                '<model name="M"><actors><subsystem name="M"/></actors></model>'
            )

    def test_bad_endpoint(self):
        xml = (
            '<model name="M"><actors><subsystem name="M">'
            '<actor name="G" type="Ground"><ports inputs="0" outputs="1"/></actor>'
            "</subsystem></actors><relationships>"
            '<scope path="M"><connection from="nocolon" to="G:0"/></scope>'
            "</relationships></model>"
        )
        with pytest.raises(ParseError, match="malformed endpoint"):
            parse_model(xml)

    def test_unknown_relationship_scope(self):
        xml = (
            '<model name="M"><actors><subsystem name="M"/></actors>'
            '<relationships><scope path="M.Ghost"/></relationships></model>'
        )
        with pytest.raises(ParseError, match="not found"):
            parse_model(xml)

    def test_validation_applies_after_parse(self):
        # G input not connected -> ValidationError via parse.
        from repro.model.errors import ValidationError

        xml = (
            '<model name="M"><actors><subsystem name="M">'
            '<actor name="T" type="Terminator"><ports inputs="1" outputs="0"/></actor>'
            "</subsystem></actors><relationships/></model>"
        )
        with pytest.raises(ValidationError):
            parse_model(xml)

    def test_empty_test_case_csv(self, tmp_path):
        from repro.stimuli import load_csv

        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_csv(path)

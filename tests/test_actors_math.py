"""Unit tests for arithmetic actor semantics, invoked directly."""

from __future__ import annotations

import math

import pytest

from repro.actors.base import BindContext, StoreBank
from repro.actors.registry import get_spec
from repro.dtypes import F32, F64, I8, I16, I32, U8, DType
from repro.model.actor import Actor


def run_actor(
    block_type,
    inputs=(),
    *,
    in_dtypes=(),
    out_dtype=None,
    operator=None,
    params=None,
    state=None,
    dt=1.0,
):
    """Instantiate one semantics object and run one output phase."""
    actor = Actor.create(
        "A",
        block_type,
        n_inputs=len(inputs),
        n_outputs=get_spec(block_type).n_outputs,
        operator=operator,
        out_dtype=out_dtype,
        params=params,
    )
    ctx = BindContext(
        in_dtypes=tuple(in_dtypes),
        out_dtypes=(out_dtype,) * actor.n_outputs,
        stores=StoreBank(),
        dt=dt,
    )
    sem = get_spec(block_type).semantics(actor, ctx)
    if state is None:
        state = sem.init_state()
    result = sem.output(state, tuple(inputs))
    return result, sem, state


class TestSum:
    def test_basic_add(self):
        res, _, _ = run_actor("Sum", (3, 4), in_dtypes=(I32, I32),
                              out_dtype=I32, operator="++")
        assert res.outputs == (7,) and not res.flags

    def test_signs(self):
        res, _, _ = run_actor("Sum", (10, 3, 2), in_dtypes=(I32,) * 3,
                              out_dtype=I32, operator="+-+")
        assert res.outputs == (9,)

    def test_leading_minus(self):
        res, _, _ = run_actor("Sum", (10, 3), in_dtypes=(I32, I32),
                              out_dtype=I32, operator="-+")
        assert res.outputs == (-7,)

    def test_overflow_flag(self):
        res, _, _ = run_actor("Sum", (127, 1), in_dtypes=(I8, I8),
                              out_dtype=I8, operator="++")
        assert res.outputs == (-128,) and res.flags.overflow

    def test_input_cast_flags(self):
        res, _, _ = run_actor("Sum", (300, 1), in_dtypes=(I32, I32),
                              out_dtype=I8, operator="++")
        assert res.flags.overflow  # 300 does not fit i8

    def test_float_negated_first_term(self):
        res, _, _ = run_actor("Sum", (0.0, 0.0), in_dtypes=(F64, F64),
                              out_dtype=F64, operator="-+")
        # -(+0.0) + 0.0 == +0.0; the first term alone would be -0.0.
        assert math.copysign(1.0, res.outputs[0]) == 1.0

    def test_float_inf_flags_non_finite(self):
        res, _, _ = run_actor("Sum", (1.7e308, 1.7e308), in_dtypes=(F64, F64),
                              out_dtype=F64, operator="++")
        assert math.isinf(res.outputs[0]) and res.flags.non_finite


class TestProduct:
    def test_multiply(self):
        res, _, _ = run_actor("Product", (6, 7), in_dtypes=(I32, I32),
                              out_dtype=I32, operator="**")
        assert res.outputs == (42,)

    def test_divide_truncates(self):
        res, _, _ = run_actor("Product", (-7, 2), in_dtypes=(I32, I32),
                              out_dtype=I32, operator="*/")
        assert res.outputs == (-3,)

    def test_divide_by_zero_flag(self):
        res, _, _ = run_actor("Product", (5, 0), in_dtypes=(I32, I32),
                              out_dtype=I32, operator="*/")
        assert res.outputs == (0,) and res.flags.div_by_zero

    def test_leading_reciprocal(self):
        res, _, _ = run_actor("Product", (4.0,), in_dtypes=(F64,),
                              out_dtype=F64, operator="/")
        assert res.outputs == (0.25,)

    def test_float_div_by_zero(self):
        res, _, _ = run_actor("Product", (1.0, 0.0), in_dtypes=(F64, F64),
                              out_dtype=F64, operator="*/")
        assert math.isinf(res.outputs[0]) and res.flags.div_by_zero


class TestGainBias:
    def test_int_gain(self):
        res, _, _ = run_actor("Gain", (5,), in_dtypes=(I32,), out_dtype=I32,
                              params={"gain": 3})
        assert res.outputs == (15,)

    def test_int_gain_overflow(self):
        res, _, _ = run_actor("Gain", (100,), in_dtypes=(I8,), out_dtype=I8,
                              params={"gain": 2})
        assert res.flags.overflow

    def test_float_gain_on_int_output(self):
        res, _, _ = run_actor("Gain", (7,), in_dtypes=(I32,), out_dtype=I32,
                              params={"gain": 0.5})
        assert res.outputs == (3,) and res.flags.precision_loss

    def test_f32_gain_rounds_per_op(self):
        from repro.dtypes import coerce_float

        res, _, _ = run_actor("Gain", (0.1,), in_dtypes=(F64,), out_dtype=F32,
                              params={"gain": 3.0})
        x32 = coerce_float(0.1, F32)
        assert res.outputs[0] == coerce_float(x32 * 3.0, F32)

    def test_bias(self):
        res, _, _ = run_actor("Bias", (5,), in_dtypes=(I32,), out_dtype=I32,
                              params={"bias": -8})
        assert res.outputs == (-3,)


class TestUnary:
    def test_abs_int_min_wraps(self):
        res, _, _ = run_actor("Abs", (-128,), in_dtypes=(I8,), out_dtype=I8)
        assert res.outputs == (-128,) and res.flags.overflow

    def test_abs_float(self):
        res, _, _ = run_actor("Abs", (-2.5,), in_dtypes=(F64,), out_dtype=F64)
        assert res.outputs == (2.5,)

    def test_neg(self):
        res, _, _ = run_actor("UnaryMinus", (5,), in_dtypes=(I32,), out_dtype=I32)
        assert res.outputs == (-5,)

    def test_neg_float_zero_keeps_sign_semantics(self):
        res, _, _ = run_actor("UnaryMinus", (0.0,), in_dtypes=(F64,), out_dtype=F64)
        assert math.copysign(1.0, res.outputs[0]) == -1.0

    def test_signum(self):
        for value, expected in ((5, 1), (-5, -1), (0, 0)):
            res, _, _ = run_actor("Signum", (value,), in_dtypes=(I32,), out_dtype=I32)
            assert res.outputs == (expected,)

    def test_signum_nan_is_zero(self):
        res, _, _ = run_actor("Signum", (math.nan,), in_dtypes=(F64,), out_dtype=F64)
        assert res.outputs == (0.0,)

    def test_sqrt_negative_is_nan(self):
        res, _, _ = run_actor("Sqrt", (-1.0,), in_dtypes=(F64,), out_dtype=F64)
        assert math.isnan(res.outputs[0]) and res.flags.non_finite


class TestMathOps:
    @pytest.mark.parametrize("op,value,expected", [
        ("exp", 0.0, 1.0),
        ("log", 1.0, 0.0),
        ("log10", 100.0, 2.0),
        ("sin", 0.0, 0.0),
        ("cos", 0.0, 1.0),
        ("tanh", 0.0, 0.0),
        ("square", 3.0, 9.0),
        ("reciprocal", 4.0, 0.25),
        ("atan", 0.0, 0.0),
    ])
    def test_values(self, op, value, expected):
        res, _, _ = run_actor("Math", (value,), in_dtypes=(F64,), out_dtype=F64,
                              operator=op)
        assert res.outputs[0] == pytest.approx(expected)

    def test_log_zero_is_neg_inf(self):
        res, _, _ = run_actor("Math", (0.0,), in_dtypes=(F64,), out_dtype=F64,
                              operator="log")
        assert res.outputs[0] == -math.inf and res.flags.non_finite

    def test_log_negative_is_nan(self):
        res, _, _ = run_actor("Math", (-1.0,), in_dtypes=(F64,), out_dtype=F64,
                              operator="log")
        assert math.isnan(res.outputs[0])

    def test_asin_domain(self):
        res, _, _ = run_actor("Math", (2.0,), in_dtypes=(F64,), out_dtype=F64,
                              operator="asin")
        assert math.isnan(res.outputs[0])

    def test_reciprocal_of_zero_flags_div(self):
        res, _, _ = run_actor("Math", (0.0,), in_dtypes=(F64,), out_dtype=F64,
                              operator="reciprocal")
        assert math.isinf(res.outputs[0])
        assert res.flags.div_by_zero and res.flags.non_finite

    def test_exp_overflow_to_inf(self):
        res, _, _ = run_actor("Math", (1000.0,), in_dtypes=(F64,), out_dtype=F64,
                              operator="exp")
        assert res.outputs[0] == math.inf and res.flags.non_finite


class TestRangeShaping:
    def test_minmax(self):
        res, _, _ = run_actor("MinMax", (3, 9, -2), in_dtypes=(I32,) * 3,
                              out_dtype=I32, operator="min")
        assert res.outputs == (-2,)
        res, _, _ = run_actor("MinMax", (3, 9, -2), in_dtypes=(I32,) * 3,
                              out_dtype=I32, operator="max")
        assert res.outputs == (9,)

    def test_mod(self):
        res, _, _ = run_actor("Mod", (-7, 3), in_dtypes=(I32, I32), out_dtype=I32)
        assert res.outputs == (-1,)

    @pytest.mark.parametrize("op,value,expected", [
        ("floor", 2.7, 2.0),
        ("ceil", 2.1, 3.0),
        ("round", 2.5, 3.0),
        ("round", -2.5, -3.0),
        ("fix", -2.9, -2.0),
    ])
    def test_rounding(self, op, value, expected):
        res, _, _ = run_actor("Rounding", (value,), in_dtypes=(F64,),
                              out_dtype=F64, operator=op)
        assert res.outputs == (expected,)

    def test_saturation(self):
        res, _, _ = run_actor("Saturation", (150,), in_dtypes=(I32,), out_dtype=I32,
                              params={"lower": -100, "upper": 100})
        assert res.outputs == (100,)
        res, _, _ = run_actor("Saturation", (-150,), in_dtypes=(I32,), out_dtype=I32,
                              params={"lower": -100, "upper": 100})
        assert res.outputs == (-100,)

    def test_dead_zone(self):
        params = {"start": -1.0, "end": 1.0}
        cases = ((0.5, 0.0), (2.0, 1.0), (-3.0, -2.0))
        for value, expected in cases:
            res, _, _ = run_actor("DeadZone", (value,), in_dtypes=(F64,),
                                  out_dtype=F64, params=params)
            assert res.outputs == (expected,)

    def test_quantizer(self):
        res, _, _ = run_actor("Quantizer", (1.3,), in_dtypes=(F64,), out_dtype=F64,
                              params={"interval": 0.5})
        assert res.outputs == (1.5,)


class TestPolyPowerBits:
    def test_polynomial_horner(self):
        # 2x^2 - x + 3 at x=4 -> 31
        res, _, _ = run_actor("Polynomial", (4.0,), in_dtypes=(F64,), out_dtype=F64,
                              params={"coeffs": [2.0, -1.0, 3.0]})
        assert res.outputs == (31.0,)

    def test_power(self):
        res, _, _ = run_actor("Power", (2.0, 10.0), in_dtypes=(F64, F64),
                              out_dtype=F64)
        assert res.outputs == (1024.0,)

    def test_power_zero_negative_exponent(self):
        res, _, _ = run_actor("Power", (0.0, -1.0), in_dtypes=(F64, F64),
                              out_dtype=F64)
        assert math.isinf(res.outputs[0]) and res.flags.non_finite

    def test_bitwise(self):
        res, _, _ = run_actor("Bitwise", (0b1100, 0b1010), in_dtypes=(U8, U8),
                              out_dtype=U8, operator="AND")
        assert res.outputs == (0b1000,)
        res, _, _ = run_actor("Bitwise", (0b1100,), in_dtypes=(U8,),
                              out_dtype=U8, operator="NOT")
        assert res.outputs == (0b11110011,)

    def test_bitwise_not_signed(self):
        res, _, _ = run_actor("Bitwise", (0,), in_dtypes=(I8,), out_dtype=I8,
                              operator="NOT")
        assert res.outputs == (-1,)

    def test_shift_left_is_checked_multiply(self):
        res, _, _ = run_actor("Shift", (100,), in_dtypes=(I8,), out_dtype=I8,
                              operator="<<", params={"amount": 2})
        assert res.flags.overflow

    def test_shift_right_arithmetic(self):
        res, _, _ = run_actor("Shift", (-5,), in_dtypes=(I32,), out_dtype=I32,
                              operator=">>", params={"amount": 1})
        assert res.outputs == (-3,)  # floor, like C sign-propagating shift

    def test_dtc(self):
        res, _, _ = run_actor("DataTypeConversion", (300,), in_dtypes=(I32,),
                              out_dtype=I8)
        assert res.outputs == (44,) and res.flags.overflow

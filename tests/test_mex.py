"""The Accelerator mode's per-actor compiled functions (engines.mex)."""

from __future__ import annotations

import pytest

from repro.dtypes import F64, I32
from repro.engines.mex import compile_mex_functions
from repro.model import ModelBuilder
from repro.schedule import preprocess

from helpers import ZOO


def _prog():
    b = ModelBuilder("Mex")
    x = b.inport("X", dtype=I32)
    g = b.gain("G", x, 3, dtype=I32)
    d = b.unit_delay("D", g, dtype=I32)
    store = b.data_store("mem", dtype=I32, initial=5)
    r = b.ds_read("Rd", store)
    b.ds_write("Wr", store, b.add("A", r, x, dtype=I32))
    b.outport("Y", b.add("S", g, d, dtype=I32))
    return preprocess(b.build())


class TestCompilation:
    def test_stateless_actors_compiled(self):
        prog = _prog()
        fns = compile_mex_functions(prog)
        compiled_types = {prog.actors[i].block_type for i in fns}
        assert "Gain" in compiled_types
        assert "Sum" in compiled_types
        assert "DataStoreRead" in compiled_types
        assert "DataStoreWrite" in compiled_types

    def test_stateful_and_boundary_not_compiled(self):
        prog = _prog()
        fns = compile_mex_functions(prog)
        uncompiled_types = {
            fa.block_type for fa in prog.actors if fa.index not in fns
        }
        assert "UnitDelay" in uncompiled_types
        assert "Inport" in uncompiled_types
        assert "Outport" in uncompiled_types

    def test_compiled_gain_computes(self):
        prog = _prog()
        fns = compile_mex_functions(prog)
        gain = prog.actor_by_path("Mex_G")
        signals = [0] * prog.n_signals
        signals[gain.input_sids[0]] = 7
        fns[gain.index](signals)
        assert signals[gain.output_sids[0]] == 21

    def test_compiled_store_roundtrip(self):
        prog = _prog()
        fns = compile_mex_functions(prog)
        read = prog.actor_by_path("Mex_Rd")
        write = prog.actor_by_path("Mex_Wr")
        signals = [0] * prog.n_signals
        fns[read.index](signals)
        assert signals[read.output_sids[0]] == 5  # initial value
        signals[write.input_sids[0]] = 42
        fns[write.index](signals)
        fns[read.index](signals)
        assert signals[read.output_sids[0]] == 42

    def test_lookup_tables_become_module_globals(self):
        b = ModelBuilder("Lut")
        x = b.inport("X", dtype=F64)
        b.outport("Y", b.lookup1d("L", x, [0.0, 1.0], [10.0, 20.0]))
        prog = preprocess(b.build())
        fns = compile_mex_functions(prog)
        lut = prog.actor_by_path("Lut_L")
        signals = [0.0] * prog.n_signals
        signals[lut.input_sids[0]] = 0.5
        fns[lut.index](signals)
        assert signals[lut.output_sids[0]] == 15.0

    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_every_zoo_model_compiles(self, name):
        model, _ = ZOO[name]()
        prog = preprocess(model)
        fns = compile_mex_functions(prog)
        assert fns  # at least something compiled everywhere

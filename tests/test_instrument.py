"""Instrumentation planning (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.diagnosis import DiagnosticKind
from repro.diagnosis.custom import output_above
from repro.dtypes import F64, I16, I32, I64
from repro.instrument import build_plan
from repro.model import ModelBuilder
from repro.model.errors import ValidationError
from repro.schedule import preprocess


def _prog():
    b = ModelBuilder("P")
    x = b.inport("X", dtype=I64)
    pos = b.relational("Pos", ">", x, b.constant("Z", 0))
    neg = b.relational("Neg", "<", x, b.constant("Z2", 0))
    both = b.logic("Both", "AND", [pos, neg])
    sw = b.switch("Sw", x, both, b.neg("N", x, dtype=I64), threshold=1, dtype=I64)
    narrowed = b.dtc("Nw", sw, I16)
    b.outport("Y", narrowed)
    b.block("Scope", "Probe", [pos], n_outputs=0)
    return preprocess(b.build())


class TestBuildPlan:
    def test_every_actor_instrumented(self):
        prog = _prog()
        plan = build_plan(prog)
        assert len(plan.actors) == len(prog.actors)
        points = sorted(inst.actor_point for inst in plan.actors)
        assert points == list(range(len(prog.actors)))

    def test_branch_actor_gets_condition_base(self):
        prog = _prog()
        plan = build_plan(prog)
        sw = plan.by_index(prog.actor_by_path("P_Sw").index)
        assert sw.condition_base == (0, 2)

    def test_boolean_actor_gets_decision_base(self):
        prog = _prog()
        plan = build_plan(prog)
        pos = plan.by_index(prog.actor_by_path("P_Pos").index)
        assert pos.decision_base is not None

    def test_combination_condition_gets_mcdc(self):
        prog = _prog()
        plan = build_plan(prog)
        both = plan.by_index(prog.actor_by_path("P_Both").index)
        assert both.mcdc_base == (0, 2)
        assert both.logic_op == "AND"
        pos = plan.by_index(prog.actor_by_path("P_Pos").index)
        assert pos.mcdc_base is None

    def test_default_collect_is_outports_and_scopes(self):
        prog = _prog()
        plan = build_plan(prog)
        collected = {inst.path for inst in plan.actors if inst.collect}
        assert collected == {"P_Y", "P_Pos"}  # outport + the Scope's feeder

    def test_collect_all(self):
        prog = _prog()
        plan = build_plan(prog, collect="all")
        assert all(inst.collect for inst in plan.actors)

    def test_collect_explicit_paths(self):
        prog = _prog()
        plan = build_plan(prog, collect=["P_Sw"])
        collected = {inst.path for inst in plan.actors if inst.collect}
        assert collected == {"P_Sw"}

    def test_collect_unknown_path_rejected(self):
        prog = _prog()
        with pytest.raises(ValidationError, match="unknown actor paths"):
            build_plan(prog, collect=["P_Ghost"])

    def test_collect_unknown_selector_rejected(self):
        prog = _prog()
        with pytest.raises(ValidationError, match="unknown collect selector"):
            build_plan(prog, collect="everything")

    def test_diagnose_restricted_to_paths(self):
        prog = _prog()
        plan = build_plan(prog, diagnose=["P_Nw"])
        diagnosed = {
            inst.path for inst in plan.actors if inst.diagnose_kinds
        }
        assert diagnosed == {"P_Nw"}

    def test_diagnostics_disabled(self):
        prog = _prog()
        plan = build_plan(prog, diagnostics=False)
        assert all(not inst.diagnose_kinds for inst in plan.actors)
        assert plan.static_warnings == []

    def test_coverage_disabled(self):
        prog = _prog()
        plan = build_plan(prog, coverage=False)
        assert all(inst.actor_point == -1 for inst in plan.actors)
        assert all(inst.condition_base is None for inst in plan.actors)

    def test_static_warnings_collected(self):
        prog = _prog()
        plan = build_plan(prog)
        assert any(
            w.kind is DiagnosticKind.DOWNCAST and w.path == "P_Nw"
            for w in plan.static_warnings
        )

    def test_custom_attached_to_actor(self):
        prog = _prog()
        diag = output_above("P_Sw", 100)
        plan = build_plan(prog, custom=[diag])
        sw = plan.by_index(prog.actor_by_path("P_Sw").index)
        assert sw.custom == (diag,)
        assert sw.needs_diagnosis

    def test_custom_unknown_path_rejected(self):
        prog = _prog()
        with pytest.raises(ValidationError, match="unknown actor"):
            build_plan(prog, custom=[output_above("P_Ghost", 1)])

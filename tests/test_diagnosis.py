"""Diagnosis: the per-type rule table, static downcast analysis, the
aggregation log, and custom signal diagnosis."""

from __future__ import annotations

import pytest

from repro.diagnosis import (
    CustomDiagnosis,
    DiagnosticKind,
    DiagnosticLog,
    applicable_kinds,
    static_downcast_warnings,
)
from repro.diagnosis.custom import (
    input_equals,
    output_above,
    output_below,
    output_outside,
)
from repro.dtypes import F64, I8, I16, I32, I64
from repro.model import ModelBuilder
from repro.schedule import preprocess

K = DiagnosticKind


def _flat(build):
    b = ModelBuilder("D")
    build(b)
    return preprocess(b.build())


class TestApplicableKinds:
    def test_product_with_division_needs_div_by_zero(self):
        prog = _flat(lambda b: b.div(
            "P", b.inport("X", dtype=I32), b.inport("Y", dtype=I32), dtype=I32
        ))
        kinds = applicable_kinds(prog.actor_by_path("D_P"))
        assert K.DIV_BY_ZERO in kinds and K.WRAP_ON_OVERFLOW in kinds

    def test_product_multiply_only_skips_div_by_zero(self):
        prog = _flat(lambda b: b.mul(
            "P", b.inport("X", dtype=I32), b.inport("Y", dtype=I32), dtype=I32
        ))
        kinds = applicable_kinds(prog.actor_by_path("D_P"))
        assert K.DIV_BY_ZERO not in kinds and K.WRAP_ON_OVERFLOW in kinds

    def test_float_sum_has_no_wrap(self):
        prog = _flat(lambda b: b.add(
            "S", b.inport("X", dtype=F64), b.inport("Y", dtype=F64)
        ))
        kinds = applicable_kinds(prog.actor_by_path("D_S"))
        assert K.WRAP_ON_OVERFLOW not in kinds and K.NON_FINITE in kinds

    def test_math_reciprocal_adds_div_by_zero(self):
        prog = _flat(lambda b: b.math(
            "M", "reciprocal", b.inport("X", dtype=F64)
        ))
        kinds = applicable_kinds(prog.actor_by_path("D_M"))
        assert K.DIV_BY_ZERO in kinds
        prog = _flat(lambda b: b.math("M", "sin", b.inport("X", dtype=F64)))
        assert K.DIV_BY_ZERO not in applicable_kinds(prog.actor_by_path("D_M"))

    def test_dtc_narrowing(self):
        prog = _flat(lambda b: b.dtc("C", b.inport("X", dtype=I64), I16))
        kinds = applicable_kinds(prog.actor_by_path("D_C"))
        assert K.WRAP_ON_OVERFLOW in kinds and K.PRECISION_LOSS in kinds

    def test_direct_lookup_is_oob(self):
        prog = _flat(lambda b: b.direct_lookup(
            "L", b.inport("X", dtype=I32), [1, 2, 3]
        ))
        assert K.ARRAY_OUT_OF_BOUNDS in applicable_kinds(prog.actor_by_path("D_L"))

    def test_multiport_switch_is_oob_even_without_calculation(self):
        prog = _flat(lambda b: b.multiport_switch(
            "M", b.inport("S", dtype=I32),
            [b.constant("A", 1), b.constant("B", 2)],
        ))
        assert applicable_kinds(prog.actor_by_path("D_M")) == {K.ARRAY_OUT_OF_BOUNDS}

    def test_non_calculation_actor_has_none(self):
        prog = _flat(lambda b: b.unit_delay(
            "U", b.inport("X", dtype=I32), dtype=I32
        ))
        assert applicable_kinds(prog.actor_by_path("D_U")) == frozenset()


class TestStaticDowncast:
    def test_narrowing_input_flagged(self):
        prog = _flat(lambda b: b.add(
            "S", b.inport("X", dtype=I64), b.inport("Y", dtype=I64), dtype=I32
        ))
        warnings = static_downcast_warnings(prog)
        assert len(warnings) == 2  # both i64 inputs narrow to i32
        assert all(w.kind is K.DOWNCAST and w.first_step == -1 for w in warnings)
        assert all(w.path == "D_S" for w in warnings)

    def test_no_warning_when_widening(self):
        prog = _flat(lambda b: b.add(
            "S", b.inport("X", dtype=I8), b.inport("Y", dtype=I8), dtype=I32
        ))
        assert static_downcast_warnings(prog) == []

    def test_float_paths_not_statically_flagged(self):
        prog = _flat(lambda b: b.add(
            "S", b.inport("X", dtype=F64), b.inport("Y", dtype=F64)
        ))
        assert static_downcast_warnings(prog) == []


class TestDiagnosticLog:
    def test_aggregation(self):
        log = DiagnosticLog()
        for step in (5, 9, 12):
            log.record("p", K.WRAP_ON_OVERFLOW, step)
        events = log.events()
        assert len(events) == 1
        assert events[0].first_step == 5 and events[0].count == 3

    def test_separate_kinds_separate_events(self):
        log = DiagnosticLog()
        log.record("p", K.WRAP_ON_OVERFLOW, 1)
        log.record("p", K.DIV_BY_ZERO, 2)
        assert len(log) == 2

    def test_halt_on_first_matching_kind(self):
        log = DiagnosticLog(halt_on={K.DIV_BY_ZERO})
        assert not log.record("p", K.WRAP_ON_OVERFLOW, 1)
        assert log.record("p", K.DIV_BY_ZERO, 2)
        assert log.halted_at == 2
        assert log.halt_event.kind is K.DIV_BY_ZERO

    def test_statics_sort_first_and_never_halt(self):
        log = DiagnosticLog(halt_on={K.DOWNCAST})
        log.add_static("p", K.DOWNCAST, "narrows")
        log.record("q", K.WRAP_ON_OVERFLOW, 3)
        events = log.events()
        assert events[0].kind is K.DOWNCAST and events[0].first_step == -1
        assert log.halted_at is None

    def test_first_runtime_step(self):
        log = DiagnosticLog()
        log.add_static("p", K.DOWNCAST, "")
        log.record("q", K.DIV_BY_ZERO, 7)
        log.record("r", K.WRAP_ON_OVERFLOW, 3)
        assert log.first_runtime_step() == 3
        assert log.first_runtime_step(K.DIV_BY_ZERO) == 7
        assert log.first_runtime_step(K.CUSTOM) is None

    def test_set_aggregate_merges(self):
        log = DiagnosticLog()
        log.set_aggregate("p", K.CUSTOM, 10, 4, "a")
        log.set_aggregate("p", K.CUSTOM, 3, 2, "b")
        events = log.events()
        assert len(events) == 1
        assert events[0].first_step == 3 and events[0].count == 6

    def test_event_str(self):
        log = DiagnosticLog()
        log.record("Model_Minus", K.WRAP_ON_OVERFLOW, 17)
        text = str(log.events()[0])
        assert "Wrap on overflow" in text and "Model_Minus" in text
        assert "step 17" in text


class TestCustomDiagnosis:
    def test_requires_some_predicate(self):
        with pytest.raises(ValueError):
            CustomDiagnosis(actor_path="p", message="m")

    def test_helpers_build_matched_pairs(self):
        for diag in (
            output_above("p", 10),
            output_below("p", -1),
            output_outside("p", 0, 5),
            input_equals("p", 3),
        ):
            assert diag.predicate is not None and diag.c_predicate is not None

    def test_output_above_predicate(self):
        diag = output_above("p", 10)
        assert diag.predicate(0, (), (11,))
        assert not diag.predicate(0, (), (10,))

    def test_output_outside_predicate(self):
        diag = output_outside("p", 0, 5)
        assert diag.predicate(0, (), (-1,))
        assert diag.predicate(0, (), (6,))
        assert not diag.predicate(0, (), (3,))

    def test_input_equals_predicate(self):
        diag = input_equals("p", 3, port=1)
        assert diag.predicate(0, (0, 3), ())
        assert not diag.predicate(0, (3, 0), ())

"""Compile-once / run-many equivalence: the reusable (stimulus-agnostic)
program against the legacy baked-in program and the interpreted SSE
reference.

The reusable binary reads its stimuli, step count, and deadline from
stdin instead of having them compiled in; these tests pin the invariant
that this changes *nothing* about the results — byte-identical outputs,
checksums, coverage bitmaps, and diagnostics across all three paths,
single-case and batched, including mid-batch halts and timeouts.
"""

from __future__ import annotations

import pytest

from repro import SimulationOptions, simulate
from repro.engines.accmos import compile_model, run_accmos
from repro.model.errors import SimulationError, SimulationTimeout
from repro.runner.cache import ArtifactCache
from repro.schedule import preprocess
from repro.stimuli import (
    ConstantStimulus,
    IntRandomStimulus,
    PulseStimulus,
    RampStimulus,
    SequenceStimulus,
    SineStimulus,
    StepStimulus,
    UniformRandomStimulus,
    default_stimuli,
)
from repro.stimuli.base import Stimulus

from conftest import requires_cc
from helpers import ZOO, assert_results_agree

STEPS = 300


class OpaqueStimulus(Stimulus):
    """Wraps a stimulus but hides its runtime descriptor — forcing the
    legacy baked-in codegen path for path-vs-path comparison."""

    def __init__(self, inner: Stimulus):
        self.inner = inner

    def reset(self):
        self.inner.reset()

    def next(self):
        return self.inner.next()

    def c_decls(self, prefix):
        return self.inner.c_decls(prefix)

    def c_step(self, target, dtype, prefix):
        return self.inner.c_step(target, dtype, prefix)

    # runtime_descriptor() inherited: returns None.


def _opaque(stimuli):
    return {name: OpaqueStimulus(s) for name, s in stimuli.items()}


@pytest.fixture(scope="module")
def zoo_programs():
    programs = {}
    for name, factory in ZOO.items():
        model, stimuli = factory()
        programs[name] = (preprocess(model), stimuli)
    return programs


@requires_cc
@pytest.mark.parametrize("name", sorted(ZOO))
def test_reusable_matches_sse_and_baked(zoo_programs, name):
    """Three-way byte identity on every zoo model: SSE, legacy baked-in
    AccMoS, reusable AccMoS."""
    prog, stimuli = zoo_programs[name]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    sse = simulate(prog, stimuli(), engine="sse", options=opts)
    baked = run_accmos(prog, _opaque(stimuli()), opts, cache=False)
    reusable = run_accmos(prog, stimuli(), opts, cache=False)
    assert_results_agree(sse, baked)
    assert_results_agree(sse, reusable)


@requires_cc
@pytest.mark.parametrize("name", ["mixed_types", "stateful", "guarded"])
def test_batch_matches_individual_runs(zoo_programs, name):
    """M cases through one process == M single-case runs, including the
    per-case reset of actor state, coverage, and diagnostics."""
    prog, _ = zoo_programs[name]
    opts = SimulationOptions(steps=STEPS, coverage=True, diagnostics=True)
    model = compile_model(prog, opts, cache=False)
    cases = [default_stimuli(prog, seed=s) for s in (3, 1, 9, 1)]
    batch = model.run_batch([(c, None) for c in cases])
    for stimuli, got in zip(cases, batch):
        assert_results_agree(model.run(stimuli), got)
        assert_results_agree(
            simulate(prog, stimuli, engine="sse", options=opts), got
        )


@requires_cc
def test_source_is_stimulus_and_steps_agnostic(zoo_programs, tmp_path):
    """Different seeds and step counts map to one cache key: a campaign
    of heterogeneous cases costs exactly one compile."""
    prog, _ = zoo_programs["stateful"]
    cache = ArtifactCache(tmp_path / "cache")
    for seed, steps in [(1, 50), (2, 400), (3, 7), (4, 50)]:
        run_accmos(
            prog, default_stimuli(prog, seed=seed),
            SimulationOptions(steps=steps), cache=cache,
        )
    stats = cache.stats()
    assert stats.misses == 1 and stats.hits == 3


@requires_cc
def test_every_stimulus_kind_roundtrips(zoo_programs):
    """Each descriptor kind streams the same values from stdin as its
    baked-in emitter — including int sequences above 2^53, which would
    corrupt if the interpreter unified the table through double.

    The mixed_types model has an I64 port (X) and an F64 port (F), so
    every kind is exercised against both dtype families' emitters.
    """
    prog, _ = zoo_programs["mixed_types"]
    int_kinds = [
        ConstantStimulus(41),
        SequenceStimulus([2**60 + 7, -(2**61) + 3, 5, 2**63 - 1]),
        StepStimulus(at=7, before=-5, after=11),
        PulseStimulus(period=6, duty=2, high=9, low=-2),
        IntRandomStimulus(78, -100, 100),
    ]
    float_kinds = [
        ConstantStimulus(2.75),
        SequenceStimulus([0.5, -3.25, float("inf"), 2.0]),
        RampStimulus(start=-2.0, slope=0.125),
        SineStimulus(amplitude=3.5, period_steps=17, phase=0.5, bias=-1.0),
        StepStimulus(at=4, before=-0.5, after=1.5),
        PulseStimulus(period=5, duty=3, high=2.5, low=-1.25),
        UniformRandomStimulus(77, -4.0, 4.0),
    ]
    opts = SimulationOptions(steps=100)
    pairs = [(ik, float_kinds[i % len(float_kinds)])
             for i, ik in enumerate(int_kinds)]
    pairs += [(int_kinds[i % len(int_kinds)], fk)
              for i, fk in enumerate(float_kinds)]
    for x_stim, f_stim in pairs:
        stimuli = {"X": x_stim, "F": f_stim}
        baked = run_accmos(prog, _opaque(stimuli), opts, cache=False)
        reusable = run_accmos(prog, stimuli, opts, cache=False)
        assert_results_agree(baked, reusable)


@requires_cc
def test_mixed_step_counts_in_one_batch(zoo_programs):
    """Per-case step counts ride in the descriptor stream."""
    prog, _ = zoo_programs["stateful"]
    base = SimulationOptions(steps=100)
    model = compile_model(prog, base, cache=False)
    per_case = [
        SimulationOptions(steps=n) for n in (10, 250, 1, 100)
    ]
    stimuli = default_stimuli(prog, seed=4)
    batch = model.run_batch([(stimuli, o) for o in per_case])
    for opts, got in zip(per_case, batch):
        ref = simulate(prog, stimuli, engine="sse", options=opts)
        assert_results_agree(ref, got)
        assert got.steps_run == opts.steps


@requires_cc
def test_mid_batch_halt_resets_state():
    """A case halting early must not leak state, coverage, or
    diagnostics into the next case of the same batch."""
    from repro import DiagnosticKind
    from repro.dtypes import I32
    from repro.model import ModelBuilder

    b = ModelBuilder("HaltBatch")
    x = b.inport("X", dtype=I32)
    y = b.inport("Y", dtype=I32)
    b.outport("Q", b.div("Div", x, y, dtype=I32))
    prog = preprocess(b.build())

    opts = SimulationOptions(
        steps=20, coverage=True, diagnostics=True,
        halt_on=frozenset({DiagnosticKind.DIV_BY_ZERO}),
    )
    model = compile_model(prog, opts, cache=False)
    cases = [
        {"X": ConstantStimulus(6), "Y": SequenceStimulus([3, 2, 0, 1])},
        {"X": ConstantStimulus(6), "Y": ConstantStimulus(2)},
        {"X": ConstantStimulus(6), "Y": SequenceStimulus([0])},
        {"X": ConstantStimulus(6), "Y": ConstantStimulus(3)},
    ]
    batch = model.run_batch([(c, None) for c in cases])
    halts = [r.halted_at for r in batch]
    assert halts == [2, None, 0, None]
    for stimuli, got in zip(cases, batch):
        ref = simulate(prog, stimuli, engine="sse", options=opts)
        assert_results_agree(ref, got)


@requires_cc
def test_mid_batch_timeout_recovers(zoo_programs):
    """A case blowing its deadline yields a SimulationTimeout entry; the
    binary resets and the following case is still byte-correct."""
    prog, _ = zoo_programs["stateful"]
    opts = SimulationOptions(steps=100)
    model = compile_model(prog, opts, cache=False)
    huge = SimulationOptions(steps=2_000_000_000)
    out = model.run_batch(
        [
            (default_stimuli(prog, seed=1), huge),
            (default_stimuli(prog, seed=2), None),
        ],
        timeout_seconds=0.2,
    )
    assert isinstance(out[0], SimulationTimeout)
    assert "wall-clock" in str(out[0])
    ref = simulate(
        prog, default_stimuli(prog, seed=2), engine="sse", options=opts
    )
    assert_results_agree(ref, out[1])


@requires_cc
def test_single_run_timeout_raises(zoo_programs):
    prog, _ = zoo_programs["stateful"]
    model = compile_model(prog, SimulationOptions(steps=100), cache=False)
    with pytest.raises(SimulationTimeout, match="wall-clock"):
        model.run(
            default_stimuli(prog, seed=1),
            SimulationOptions(steps=2_000_000_000),
            timeout_seconds=0.2,
        )


def test_execute_timeout_captures_stderr_and_counts(tmp_path):
    """A killed binary's message carries its stderr, and the kill bumps
    the engine.accmos.timeouts counter."""
    from repro import telemetry
    from repro.codegen.driver import CompiledSimulation

    script = tmp_path / "slow.sh"
    script.write_text("#!/bin/sh\necho boom-detail >&2\nsleep 30\n")
    script.chmod(0o755)
    sim = CompiledSimulation(
        binary=script, source=script, layout=None, compile_seconds=0.0
    )
    with telemetry.capture() as session:
        with pytest.raises(SimulationTimeout) as excinfo:
            sim.execute(timeout_seconds=0.2)
    assert "wall-clock" in str(excinfo.value)
    assert "boom-detail" in str(excinfo.value)
    snap = session.metrics.snapshot()
    assert snap["counters"]["engine.accmos.timeouts"] == 1


@requires_cc
def test_structural_option_change_rejected(zoo_programs):
    """Per-case options may vary steps/time_budget only; anything that
    reshapes the binary must go through a fresh compile_model."""
    prog, _ = zoo_programs["stateful"]
    model = compile_model(
        prog, SimulationOptions(steps=100, coverage=True), cache=False
    )
    with pytest.raises(SimulationError, match="structure"):
        model.run(
            default_stimuli(prog, seed=1),
            SimulationOptions(steps=100, coverage=False),
        )


@requires_cc
def test_opaque_stimulus_rejected_by_compiled_model(zoo_programs):
    prog, _ = zoo_programs["stateful"]
    model = compile_model(prog, SimulationOptions(steps=50), cache=False)
    opaque = _opaque(default_stimuli(prog, seed=1))
    with pytest.raises(SimulationError, match="descriptor"):
        model.run(opaque)

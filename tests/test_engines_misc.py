"""Engine-specific behaviour: Accelerator/Rapid-Accelerator analogs and
the one-call API."""

from __future__ import annotations

import pytest

from repro import ENGINES, SimulationOptions, simulate
from repro.dtypes import I32
from repro.model import ModelBuilder
from repro.model.errors import SimulationError
from repro.schedule import preprocess
from repro.stimuli import ConstantStimulus

from helpers import ZOO


def _prog():
    b = ModelBuilder("E")
    x = b.inport("X", dtype=I32)
    b.outport("Y", b.accumulator("Acc", x, dtype=I32))
    return preprocess(b.build())


class TestAcceleratorAnalogs:
    def test_ac_reports_no_coverage_or_diagnostics(self):
        prog = _prog()
        result = simulate(prog, {"X": ConstantStimulus(10**6)}, engine="sse_ac",
                          steps=3000)
        assert result.coverage is None
        assert result.diagnostics == []
        assert result.engine == "sse_ac"

    def test_rac_reports_no_coverage_or_diagnostics(self):
        prog = _prog()
        result = simulate(prog, {"X": ConstantStimulus(10**6)}, engine="sse_rac",
                          steps=3000)
        assert result.coverage is None
        assert result.diagnostics == []
        assert result.extra["precompile_seconds"] > 0

    def test_rac_time_budget(self):
        prog = _prog()
        options = SimulationOptions(steps=10**9, time_budget=0.05)
        result = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse_rac",
                          options=options)
        assert 0 < result.steps_run < 10**9

    def test_ac_time_budget(self):
        prog = _prog()
        options = SimulationOptions(steps=10**9, time_budget=0.05)
        result = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse_ac",
                          options=options)
        assert 0 < result.steps_run < 10**9

    def test_rac_partial_batch_flushes(self):
        prog = _prog()
        # 70 steps = one full sync batch (64) + a 6-frame tail.
        result = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse_rac",
                          steps=70)
        reference = simulate(prog, {"X": ConstantStimulus(1)}, engine="sse",
                             steps=70)
        assert result.checksums == reference.checksums

    def test_rac_missing_stimulus(self):
        prog = _prog()
        with pytest.raises(SimulationError, match="no stimulus"):
            simulate(prog, {}, engine="sse_rac", steps=1)

    def test_engines_are_ranked_by_speed_on_a_big_model(self):
        """The paper's ordering: SSE slowest, then AC, then RAC."""
        from repro.benchmarks import benchmark_stimuli, build_benchmark

        prog = preprocess(build_benchmark("SPV"))
        times = {}
        for engine in ("sse", "sse_ac", "sse_rac"):
            result = simulate(prog, benchmark_stimuli(prog), engine=engine,
                              steps=4000)
            times[engine] = result.wall_time
        assert times["sse"] > times["sse_ac"], times
        assert times["sse_ac"] > times["sse_rac"], times


class TestSimulateApi:
    def test_accepts_model_directly(self):
        b = ModelBuilder("A")
        x = b.inport("X", dtype=I32)
        b.outport("Y", x)
        result = simulate(b.build(), {"X": ConstantStimulus(3)}, engine="sse",
                          steps=2)
        assert result.outputs["Y"] == 3

    def test_default_stimuli_generated(self):
        result = simulate(_prog(), engine="sse", steps=10)
        assert result.steps_run == 10

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate(_prog(), engine="warp", steps=1)

    def test_options_and_kwargs_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            simulate(_prog(), engine="sse",
                     options=SimulationOptions(steps=1), steps=2)

    def test_engine_registry(self):
        assert set(ENGINES) == {"sse", "sse_ac", "sse_rac", "accmos"}

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SimulationOptions(steps=-1)

    def test_result_summary_readable(self):
        result = simulate(_prog(), engine="sse", steps=5)
        text = result.summary()
        assert "sse" in text and "5/5 steps" in text


class TestZooOnAnalogEngines:
    @pytest.mark.parametrize("name", ["guarded", "stores", "sources"])
    def test_special_semantics_survive_closure_compilation(self, name):
        """Guards, stores, and stateful sources through sse_ac closures."""
        model, stimuli = ZOO[name]()
        prog = preprocess(model)
        reference = simulate(prog, stimuli(), engine="sse", steps=200)
        result = simulate(prog, stimuli(), engine="sse_ac", steps=200)
        assert result.checksums == reference.checksums

"""Failed server spawns must not leak pipe file descriptors.

``SimulationServer.__init__`` opens three pipes before the ``ready``
handshake; every failure shape — child exits before greeting (stdout
EOF), child hangs (handshake timeout), child prints the wrong greeting —
must reap the process and close all three, or a flood of failed spawns
(a crashing binary retried by a pool, a bad artifact) exhausts the fd
table.
"""

from __future__ import annotations

import os
import stat
from types import SimpleNamespace

import pytest

from repro.codegen.driver import ServerError, SimulationServer
from repro.engines.accmos import ModelServer

pytestmark = pytest.mark.skipif(
    not os.path.exists("/proc/self/fd"),
    reason="fd counting needs /proc (Linux)",
)

FLOOD = 25
# Threads and the queue machinery may lazily create a handful of fds on
# first use; the flood itself must not scale the count.
FD_SLACK = 4


def _script(tmp_path, name: str, body: str):
    path = tmp_path / name
    path.write_text(f"#!/bin/sh\n{body}\n")
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return path


def _fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


def _fake_compiled(binary):
    return SimpleNamespace(binary=binary)


def _flood(spawn, n=FLOOD):
    # One warm-up absorbs lazily-allocated fds (thread stacks, queues).
    with pytest.raises(ServerError):
        spawn()
    before = _fd_count()
    for _ in range(n):
        with pytest.raises(ServerError):
            spawn()
    after = _fd_count()
    assert after <= before + FD_SLACK, (
        f"fd count grew {before} -> {after} across {n} failed spawns"
    )


def test_child_dies_before_ready(tmp_path):
    binary = _script(tmp_path, "dies.sh", "exit 3")
    compiled = _fake_compiled(binary)
    _flood(lambda: SimulationServer(compiled, handshake_timeout=5.0))


def test_child_wrong_greeting(tmp_path):
    # `exec` so the kill reaches the sleeping process itself — a shell
    # grandchild would inherit the pipe's write end and outlive the kill
    # (a real server binary is a direct executable; no grandchildren).
    binary = _script(tmp_path, "greets.sh", 'echo "hello"\nexec sleep 30')
    compiled = _fake_compiled(binary)
    _flood(lambda: SimulationServer(compiled, handshake_timeout=5.0))


def test_child_hangs_without_ready(tmp_path):
    binary = _script(tmp_path, "hangs.sh", "exec sleep 30")
    compiled = _fake_compiled(binary)
    _flood(
        lambda: SimulationServer(compiled, handshake_timeout=0.2),
        n=6,  # each failure waits out the timeout; keep the flood short
    )


def test_model_server_spawn_failure_no_leak(tmp_path):
    binary = _script(tmp_path, "dies.sh", "exit 7")
    model = SimpleNamespace(
        compiled=_fake_compiled(binary),
        prog=SimpleNamespace(model=SimpleNamespace(name="fake")),
    )
    _flood(lambda: ModelServer(model, handshake_timeout=5.0))


def test_server_pool_spawn_failure_no_leak(tmp_path):
    from repro.runner.servers import ServerPool

    binary = _script(tmp_path, "dies.sh", "exit 9")
    model = SimpleNamespace(
        compiled=_fake_compiled(binary),
        prog=SimpleNamespace(model=SimpleNamespace(name="fake")),
    )
    model.serve = lambda **kw: ModelServer(model, handshake_timeout=5.0)
    with ServerPool(max_servers=2) as pool:
        _flood(lambda: pool.acquire(model))


def test_failed_handshake_reaps_child(tmp_path):
    binary = _script(tmp_path, "hangs.sh", "exec sleep 30")
    compiled = _fake_compiled(binary)
    try:
        SimulationServer(compiled, handshake_timeout=0.2)
    except ServerError:
        pass
    # No sleeping child may survive the failed handshake: the fix kills
    # and reaps on every handshake failure path.
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as fh:
                fields = fh.read().split()
        except OSError:
            continue
        if fields[3] == str(os.getpid()):  # our direct child
            assert "sleep" not in fields[1], "handshake failure left child running"

"""The differential fuzzer: generator validity, oracle sensitivity, and
shrinker minimality.

The oracle's real catch rate is exercised end-to-end in
``test_fuzz_campaign.py``; here the components are pinned in isolation,
including with *seeded* divergences (a predicate or broken rung planted
on purpose) so the shrinker's contract — minimal, still-failing, valid —
is tested without depending on a live equivalence bug.
"""

from __future__ import annotations

import json

import pytest
from conftest import requires_cc

from repro.fuzz import (
    CaseSpec,
    available_rungs,
    build_model,
    build_stimuli,
    case_signature,
    drop_node,
    generate_case,
    run_case,
    shrink_case,
)
from repro.fuzz.generate import GUARDED, STORE, NodeSpec
from repro.schedule import preprocess

SWEEP = 60  # seeds per validity sweep — keeps the suite fast


class TestGenerate:
    def test_deterministic(self):
        # NaN params defeat plain dict equality; the canonical signature
        # is the determinism contract.
        assert case_signature(generate_case(1234)) == case_signature(
            generate_case(1234)
        )

    def test_distinct_seeds_differ(self):
        signatures = {case_signature(generate_case(s)) for s in range(20)}
        assert len(signatures) > 15

    @pytest.mark.parametrize("seed", range(SWEEP))
    def test_every_seed_builds_and_preprocesses(self, seed):
        case = generate_case(seed)
        model = build_model(case)
        prog = preprocess(model)
        assert prog.outports, "generated case must observe something"
        stimuli = build_stimuli(case)
        assert set(stimuli) == {b.name for b in prog.inports}

    def test_json_roundtrip_rebuilds_same_model(self):
        case = generate_case(77)
        again = CaseSpec.from_dict(json.loads(json.dumps(case.to_dict())))
        assert case_signature(again) == case_signature(case)
        build_model(again)

    def test_registry_breadth(self):
        """A modest sweep must reach a broad slice of the registry,
        including the structural composites."""
        seen = set()
        for seed in range(250):
            for node in generate_case(seed).nodes:
                seen.add(node.block_type)
        assert GUARDED in seen and STORE in seen
        assert len(seen - {GUARDED, STORE, "Inport"}) >= 35, sorted(seen)


class TestOracle:
    def test_python_rungs_agree_on_sweep(self):
        for seed in range(8):
            report = run_case(generate_case(seed), rungs=("sse_ac", "sse_rac"))
            assert report.agreed, report.divergences

    @requires_cc
    def test_all_rungs_agree(self):
        report = run_case(generate_case(3), rungs=available_rungs())
        assert report.agreed, report.divergences

    def test_detects_planted_divergence(self, monkeypatch):
        """A rung whose checksums are perturbed must be flagged."""
        import repro.engines.api as api

        real = api.ENGINES["sse_ac"]

        def broken(prog, stimuli, options):
            result = real(prog, stimuli, options)
            result.checksums = {k: v ^ 1 for k, v in result.checksums.items()}
            return result

        monkeypatch.setitem(api.ENGINES, "sse_ac", broken)
        report = run_case(generate_case(5), rungs=("sse_ac",))
        assert not report.agreed
        assert any(d.kind == "checksums" for d in report.divergences)

    def test_engine_crash_is_a_divergence(self, monkeypatch):
        import repro.engines.api as api

        def crashes(prog, stimuli, options):
            raise RuntimeError("kaboom")

        monkeypatch.setitem(api.ENGINES, "sse_rac", crashes)
        report = run_case(generate_case(5), rungs=("sse_rac",))
        assert [d.kind for d in report.divergences] == ["error"]
        assert "kaboom" in report.divergences[0].detail


class TestShrink:
    def test_drop_node_cascades(self):
        case = generate_case(9)
        first_real = next(
            n.name for n in case.nodes if n.block_type != "Inport"
        )
        smaller = drop_node(case, first_real)
        if smaller is not None:
            names = {n.name for n in smaller.nodes}
            for node in smaller.nodes:
                assert all(i in names for i in node.inputs)
            assert set(smaller.stimuli) == {
                n.name for n in smaller.nodes if n.block_type == "Inport"
            }

    def test_seeded_divergence_shrinks_to_minimal(self):
        """The acceptance contract: a divergence seeded on one block type
        shrinks to <= 4 actors (here: to exactly the one guilty node plus
        its feeders)."""
        case = None
        for seed in range(200):
            candidate = generate_case(seed, max_actors=14)
            if (
                any(n.block_type == "Quantizer" for n in candidate.nodes)
                and candidate.n_actors >= 10
            ):
                case = candidate
                break
        assert case is not None, "sweep produced no large Quantizer case"

        def still_fails(spec: CaseSpec) -> bool:
            build_model(spec)  # invalid candidates must raise -> rejected
            return any(n.block_type == "Quantizer" for n in spec.nodes)

        shrunk, stats = shrink_case(case, still_fails)
        assert any(n.block_type == "Quantizer" for n in shrunk.nodes)
        assert shrunk.n_actors <= 4, (
            f"{stats.summary()}: {[n.block_type for n in shrunk.nodes]}"
        )
        assert shrunk.steps == 1
        assert stats.reductions > 0
        build_model(shrunk)  # the minimal reproducer is still valid

    def test_shrink_simplifies_stimuli(self):
        case = generate_case(11)
        assert case.stimuli

        def still_fails(spec: CaseSpec) -> bool:
            build_model(spec)
            return True  # everything "fails": maximal shrink

        shrunk, _stats = shrink_case(case, still_fails)
        for spec in shrunk.stimuli.values():
            assert spec["kind"] == "constant"

    def test_shrink_respects_attempt_budget(self):
        case = generate_case(13)
        calls = []

        def still_fails(spec: CaseSpec) -> bool:
            calls.append(1)
            return True

        shrink_case(case, still_fails, max_attempts=5)
        assert len(calls) <= 5

    @requires_cc
    def test_shrink_with_real_oracle_predicate(self, monkeypatch):
        """End to end: break a rung, fuzz until the oracle trips, shrink
        with the oracle itself as the predicate."""
        import repro.engines.api as api

        real = api.ENGINES["sse_ac"]

        def broken(prog, stimuli, options):
            result = real(prog, stimuli, options)
            for k in result.outputs:
                if isinstance(result.outputs[k], float):
                    result.outputs[k] += 1.0
                    result.checksums = {
                        c: v ^ 0xDEAD for c, v in result.checksums.items()
                    }
                    break
            return result

        monkeypatch.setitem(api.ENGINES, "sse_ac", broken)
        case = None
        for seed in range(40):
            candidate = generate_case(seed)
            if not run_case(candidate, rungs=("sse_ac",)).agreed:
                case = candidate
                break
        assert case is not None

        def still_fails(spec: CaseSpec) -> bool:
            return not run_case(spec, rungs=("sse_ac",)).agreed

        shrunk, stats = shrink_case(case, still_fails, max_attempts=120)
        assert not run_case(shrunk, rungs=("sse_ac",)).agreed
        assert shrunk.n_actors <= case.n_actors
        assert stats.attempts <= 120

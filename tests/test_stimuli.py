"""Stimuli: generator streams, reset determinism, CSV round trip, and the
cross-language C emission contracts."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dtypes import F64, I16, I32
from repro.stimuli import (
    ConstantStimulus,
    IntRandomStimulus,
    PulseStimulus,
    RampStimulus,
    SequenceStimulus,
    SineStimulus,
    StepStimulus,
    TestCaseTable,
    UniformRandomStimulus,
    default_stimuli,
    load_csv,
    save_csv,
)
from repro.stimuli.base import c_double_literal, c_int_literal


def drain(stim, n):
    stim.reset()
    return [stim.next() for _ in range(n)]


class TestGenerators:
    def test_constant(self):
        assert drain(ConstantStimulus(5), 3) == [5, 5, 5]

    def test_sequence_cycles(self):
        assert drain(SequenceStimulus([1, 2, 3]), 7) == [1, 2, 3, 1, 2, 3, 1]

    def test_sequence_rejects_empty(self):
        with pytest.raises(ValueError):
            SequenceStimulus([])

    def test_ramp(self):
        assert drain(RampStimulus(start=1.0, slope=0.5), 3) == [1.0, 1.5, 2.0]

    def test_step(self):
        assert drain(StepStimulus(at=2, before=0, after=9), 4) == [0, 0, 9, 9]

    def test_pulse(self):
        assert drain(PulseStimulus(period=4, duty=2, high=1, low=0), 6) == [
            1, 1, 0, 0, 1, 1
        ]

    def test_pulse_validation(self):
        with pytest.raises(ValueError):
            PulseStimulus(period=0, duty=0)
        with pytest.raises(ValueError):
            PulseStimulus(period=4, duty=5)

    def test_sine(self):
        values = drain(SineStimulus(amplitude=2.0, period_steps=4), 4)
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(2.0)

    def test_reset_restarts_streams(self):
        for stim in (
            SequenceStimulus([1, 2, 3]),
            RampStimulus(),
            UniformRandomStimulus(1),
            IntRandomStimulus(1, 0, 9),
            StepStimulus(at=1),
            PulseStimulus(period=3, duty=1),
            SineStimulus(),
        ):
            first = [stim.next() for _ in range(5)]
            stim.reset()
            assert [stim.next() for _ in range(5)] == first

    def test_uniform_range(self):
        values = drain(UniformRandomStimulus(3, lo=-2.0, hi=2.0), 200)
        assert all(-2.0 <= v < 2.0 for v in values)
        assert len(set(values)) > 150

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformRandomStimulus(1, lo=1.0, hi=1.0)

    def test_int_random_range(self):
        values = drain(IntRandomStimulus(4, -3, 3), 300)
        assert set(values) == {-3, -2, -1, 0, 1, 2, 3}

    def test_int_random_rejects_bad_range(self):
        with pytest.raises(ValueError):
            IntRandomStimulus(1, 5, 4)

    def test_seeds_give_distinct_streams(self):
        a = drain(IntRandomStimulus(1, 0, 1000), 20)
        b = drain(IntRandomStimulus(2, 0, 1000), 20)
        assert a != b

    def test_conform_wraps_ints(self):
        stim = ConstantStimulus(300)
        assert stim.conform(300, I16) == 300
        from repro.dtypes import I8

        assert stim.conform(300, I8) == 44

    def test_conform_coerces_floats(self):
        from repro.dtypes import F32

        stim = ConstantStimulus(0.1)
        assert stim.conform(0.1, F32) != 0.1


class TestLiterals:
    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_double_literal_roundtrips(self, value):
        text = c_double_literal(value)
        if text.lstrip("-").startswith("0x"):
            parsed = float.fromhex(text)
        else:
            parsed = float(text)
        assert parsed == value

    def test_special_literals(self):
        # The <math.h> macros, not folded-division expressions: gcc
        # constant-folds (0.0/0.0) to a NaN whose sign bit differs from
        # Python's, and checksums hash raw bits.
        assert c_double_literal(float("inf")) == "INFINITY"
        assert c_double_literal(float("-inf")) == "(-INFINITY)"
        assert c_double_literal(float("nan")) == "NAN"

    def test_int64_min_literal(self):
        from repro.dtypes import I64

        assert "9223372036854775807" in c_int_literal(-(2**63), I64)


class TestDefaultStimuli:
    def test_covers_every_inport(self):
        from repro.model import ModelBuilder
        from repro.schedule import preprocess

        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        f = b.inport("F", dtype=F64)
        b.outport("Y", b.add("S", x, b.dtc("C", f, I32), dtype=I32))
        prog = preprocess(b.build())
        stimuli = default_stimuli(prog)
        assert set(stimuli) == {"X", "F"}

    def test_seed_changes_streams(self):
        from repro.model import ModelBuilder
        from repro.schedule import preprocess

        b = ModelBuilder("M")
        x = b.inport("X", dtype=I32)
        b.outport("Y", x)
        prog = preprocess(b.build())
        s1 = default_stimuli(prog, seed=1)["X"]
        s2 = default_stimuli(prog, seed=2)["X"]
        assert drain(s1, 10) != drain(s2, 10)


class TestTestCaseTable:
    def test_columns_must_align(self):
        with pytest.raises(ValueError, match="differ in length"):
            TestCaseTable({"A": [1, 2], "B": [1]})

    def test_from_rows(self):
        table = TestCaseTable.from_rows(["A", "B"], [(1, 2), (3, 4)])
        assert table.columns == {"A": [1, 3], "B": [2, 4]}
        assert table.row(1) == {"A": 3, "B": 4}

    def test_from_rows_ragged_rejected(self):
        with pytest.raises(ValueError):
            TestCaseTable.from_rows(["A", "B"], [(1,)])

    def test_to_stimuli(self):
        table = TestCaseTable({"A": [5, 6]})
        stim = table.to_stimuli()["A"]
        assert drain(stim, 4) == [5, 6, 5, 6]

    def test_csv_roundtrip(self, tmp_path):
        table = TestCaseTable({"A": [1, -2, 3], "B": [0.5, 1.5, -2.5]})
        path = tmp_path / "cases.csv"
        save_csv(table, path)
        again = load_csv(path)
        assert again.columns == table.columns
        # ints stay ints, floats stay floats
        assert isinstance(again.columns["A"][0], int)
        assert isinstance(again.columns["B"][0], float)


@pytest.mark.usefixtures("cc_available")
class TestCrossLanguageStreams:
    """Each stimulus's C emission produces the same stream as next()."""

    @pytest.mark.parametrize("stim,dtype", [
        (ConstantStimulus(7), I32),
        (ConstantStimulus(0.3), F64),
        (SequenceStimulus([3, -1, 4, 1, -5]), I32),
        (SequenceStimulus([0.25, -1.5]), F64),
        (RampStimulus(start=-2.0, slope=0.125), F64),
        (SineStimulus(amplitude=1.5, period_steps=7, phase=0.2, bias=-0.1), F64),
        (StepStimulus(at=3, before=-1, after=6), I32),
        (PulseStimulus(period=5, duty=2, high=9, low=-9), I32),
        (UniformRandomStimulus(11, lo=-1.0, hi=4.0), F64),
        (IntRandomStimulus(12, -50, 50), I32),
    ])
    def test_c_stream_matches_python(self, stim, dtype, tmp_path, cc_available):
        if not cc_available:
            pytest.skip("no C compiler")
        import subprocess

        n = 64
        decls = stim.c_decls("stim0")
        step_code = stim.c_step("v", dtype, "stim0")
        if dtype.is_float:
            print_stmt = 'printf("%a\\n", (double)v);'
        else:
            print_stmt = 'printf("%lld\\n", (long long)v);'
        source = f"""
#include <stdio.h>
#include <stdint.h>
#include <math.h>
{decls}
int main(void) {{
    for (int64_t step = 0; step < {n}; step++) {{
        {dtype.c_name} v;
        {step_code}
        {print_stmt}
    }}
    return 0;
}}
"""
        c_file = tmp_path / "stim.c"
        c_file.write_text(source)
        binary = tmp_path / "stim"
        subprocess.run(
            ["gcc", "-O2", "-o", str(binary), str(c_file), "-lm"], check=True
        )
        lines = subprocess.run(
            [str(binary)], capture_output=True, text=True, check=True
        ).stdout.splitlines()
        if dtype.is_float:
            c_values = [float.fromhex(line) for line in lines]
        else:
            c_values = [int(line) for line in lines]
        py_values = [stim.conform(v, dtype) for v in drain(stim, n)]
        assert c_values == py_values

"""Shared test utilities: the model zoo and result-comparison helpers.

The zoo is a set of small models that together exercise every registered
actor type, every dtype family, guards, stores, and merges.  The
cross-engine equivalence tests run each zoo model on every engine and
require bit-identical results, so any semantics/template divergence
anywhere in the library fails loudly here.
"""

from __future__ import annotations

import math

from repro.dtypes import BOOL, F32, F64, I8, I16, I32, I64, U8, U16, U32, U64
from repro.model.builder import ModelBuilder
from repro.stimuli import (
    ConstantStimulus,
    IntRandomStimulus,
    SequenceStimulus,
    UniformRandomStimulus,
)


def assert_results_agree(reference, other, *, coverage=True, diagnostics=True):
    """Bitwise agreement between two SimulationResults."""
    assert other.steps_run == reference.steps_run, (
        f"steps_run: {other.engine}={other.steps_run} "
        f"{reference.engine}={reference.steps_run}"
    )
    assert other.checksums == reference.checksums, (
        f"checksums differ: {reference.engine}={reference.checksums} "
        f"{other.engine}={other.checksums} "
        f"(outputs {reference.outputs} vs {other.outputs})"
    )
    for name, value in reference.outputs.items():
        other_value = other.outputs[name]
        if isinstance(value, float) and math.isnan(value):
            assert math.isnan(other_value), (name, value, other_value)
        else:
            assert other_value == value, (name, value, other_value)
    assert other.halted_at == reference.halted_at
    if coverage and reference.coverage is not None:
        assert other.coverage is not None
        assert other.coverage.bitmaps == reference.coverage.bitmaps, (
            f"coverage: {reference.engine}=[{reference.coverage.summary()}] "
            f"{other.engine}=[{other.coverage.summary()}]"
        )
    if diagnostics:
        ref = [(e.path, e.kind.value, e.first_step, e.count)
               for e in reference.diagnostics]
        oth = [(e.path, e.kind.value, e.first_step, e.count)
               for e in other.diagnostics]
        assert oth == ref, f"diagnostics differ:\n ref={ref}\n oth={oth}"


# ----------------------------------------------------------------------
# zoo models
# ----------------------------------------------------------------------
def zoo_int_arith():
    """Sum/Product/Gain/Bias/Abs/Neg/Shift/Mod over narrow ints (wraps)."""
    b = ModelBuilder("IntArith")
    x = b.inport("X", dtype=I16)
    y = b.inport("Y", dtype=I16)
    s = b.sum_("S3", [x, y, b.constant("K7", 7, dtype=I16)], signs="+-+", dtype=I16)
    p = b.product("P", [s, x], ops="**", dtype=I16)
    q = b.div("Q", p, b.bias("YOff", y, 3, dtype=I16), dtype=I16)
    g = b.gain("G", q, 3, dtype=I16)
    m = b.mod("M", g, b.constant("K13", 13, dtype=I16), dtype=I16)
    a = b.abs_("A", m, dtype=I16)
    n = b.neg("N", a, dtype=I16)
    sh = b.shift("Sh", "<<", n, 2, dtype=I16)
    sh2 = b.shift("Sh2", ">>", sh, 1, dtype=I16)
    b.outport("Out", sh2)
    return b.build(), lambda: {
        "X": IntRandomStimulus(3, -30000, 30000),
        "Y": IntRandomStimulus(4, -30000, 30000),
    }


def zoo_unsigned():
    """Unsigned arithmetic, bitwise ops, and wide/narrow casts."""
    b = ModelBuilder("Unsigned")
    x = b.inport("X", dtype=U32)
    y = b.inport("Y", dtype=U16)
    wide = b.dtc("Wide", y, U64)
    s = b.add("S", x, wide, dtype=U64)
    m = b.mul("M", s, b.constant("K", 2654435761, dtype=U64), dtype=U64)
    bx = b.bitwise("BX", "XOR", [m, b.constant("Mask", 0x5A5A5A5A, dtype=U64)], dtype=U64)
    sh = b.shift("Sh", ">>", bx, 7, dtype=U64)
    narrow = b.dtc("Narrow", sh, U8)
    nt = b.bitwise("NT", "NOT", [narrow], dtype=U8)
    b.outport("Out", nt)
    b.outport("OutWide", sh)
    return b.build(), lambda: {
        "X": IntRandomStimulus(5, 0, 4_000_000_000),
        "Y": IntRandomStimulus(6, 0, 65535),
    }


def zoo_float_pipeline():
    """Transcendentals, saturation, deadzone, quantizer, rounding, lookup."""
    b = ModelBuilder("FloatPipe")
    x = b.inport("X", dtype=F64)
    scaled = b.gain("Scale", x, 6.0)
    shifted = b.bias("Shift", scaled, -3.0)
    s = b.math("Sin", "sin", shifted)
    e = b.math("Exp", "exp", s)
    lg = b.math("Log", "log", b.abs_("Mag", shifted))
    sq = b.sqrt("Root", b.abs_("Mag2", lg))
    sat = b.saturation("Sat", e, 0.1, 5.0)
    dz = b.dead_zone("Dz", shifted, -0.5, 0.5)
    qz = b.quantizer("Qz", dz, 0.25)
    rd = b.rounding("Rd", "round", qz)
    lut = b.lookup1d("Lut", shifted, [-3.0, -1.0, 0.0, 1.0, 3.0],
                     [9.0, 1.0, 0.0, 1.0, 9.0])
    poly = b.block("Polynomial", "Poly", [lut], params={"coeffs": [0.5, -1.0, 2.0]})
    pw = b.block("Power", "Pw", [sat, b.constant("Half", 0.5)])
    fm = b.mod("Fm", shifted, b.constant("K15", 1.5), dtype=F64)
    total = b.sum_("Total", [sq, rd, poly, pw, fm], dtype=F64)
    b.block("Display", "Show", [total], n_outputs=0)
    b.outport("Out", total)
    return b.build(), lambda: {"X": UniformRandomStimulus(7, 0.0, 1.0)}


def zoo_f32():
    """Single-precision path: per-op rounding discipline."""
    b = ModelBuilder("F32Pipe")
    x = b.inport("X", dtype=F32)
    y = b.inport("Y", dtype=F32)
    s = b.add("S", x, y, dtype=F32)
    m = b.mul("M", s, b.constant("K", 1.2999999523162842, dtype=F32), dtype=F32)
    d = b.div("D", m, b.bias("YOff", y, 0.5, dtype=F32), dtype=F32)
    filt = b.block("DiscreteFilter", "Filt", [d],
                   params={"b0": 0.25, "a1": 0.75})
    sn = b.math("Sin", "sin", filt)
    up = b.dtc("Up", sn, F64)
    b.outport("Out", up)
    b.outport("Out32", filt)
    return b.build(), lambda: {
        "X": UniformRandomStimulus(8, -2.0, 2.0),
        "Y": UniformRandomStimulus(9, -2.0, 2.0),
    }


def zoo_logic_decisions():
    """Relational/Logic/Compare actors: decision + MC/DC coverage."""
    b = ModelBuilder("LogicZoo")
    x = b.inport("X", dtype=I32)
    y = b.inport("Y", dtype=I32)
    a1 = b.relational("GT", ">", x, y)
    a2 = b.relational("EQ", "==", x, b.constant("K5", 5))
    a3 = b.block("CompareToConstant", "CC", [y], operator="<=",
                 params={"constant": -2})
    a4 = b.block("CompareToZero", "CZ", [x], operator="!=")
    and3 = b.logic("And3", "AND", [a1, a2, a3])
    or3 = b.logic("Or3", "OR", [a1, a3, a4])
    xor3 = b.logic("Xor3", "XOR", [a1, a2, a4])
    nand2 = b.logic("Nand2", "NAND", [a2, a3])
    nor2 = b.logic("Nor2", "NOR", [a1, a4])
    not1 = b.not_("Not1", a1)
    total = b.sum_("Total", [and3, or3, xor3, nand2, nor2, not1], dtype=I32)
    b.outport("Out", total)
    return b.build(), lambda: {
        "X": IntRandomStimulus(10, -8, 8),
        "Y": IntRandomStimulus(11, -8, 8),
    }


def zoo_control():
    """Switch/MultiportSwitch/Relay branch coverage, incl. OOB control."""
    b = ModelBuilder("ControlZoo")
    x = b.inport("X", dtype=I32)
    sel = b.inport("Sel", dtype=I32)
    pos = b.relational("Pos", ">", x, b.constant("Z", 0))
    sw = b.switch("Sw", b.gain("Twice", x, 2), pos, b.neg("Neg", x), threshold=1)
    cases = [b.constant(f"C{i}", i * 10) for i in range(3)]
    mp = b.multiport_switch("Mp", sel, [*cases, sw])  # sel may exceed range
    dl = b.direct_lookup("Dl", sel, [5, 6, 7])  # OOB flags expected
    ry = b.relay("Ry", x, on_threshold=10, off_threshold=-10,
                 on_value=100, off_value=-100)
    total = b.sum_("Total", [mp, dl, ry], dtype=I32)
    b.outport("Out", total)
    return b.build(), lambda: {
        "X": IntRandomStimulus(12, -20, 20),
        "Sel": IntRandomStimulus(13, -1, 5),
    }


def zoo_stateful():
    """Delays, integrator, derivative, accumulator, rate limiter, memory."""
    b = ModelBuilder("Stateful")
    x = b.inport("X", dtype=F64)
    ud = b.unit_delay("Ud", x, initial=0.25)
    mem = b.memory("Mem", ud, initial=-1.0)
    dl = b.delay("Dl", x, 3, initial=0.5)
    integ = b.discrete_integrator("Integ", x, gain=0.5, initial=1.0)
    deriv = b.block("DiscreteDerivative", "Deriv", [x], params={})
    rl = b.block("RateLimiter", "Rl", [x], params={"rising": 0.1, "falling": 0.2})
    zoh = b.block("ZeroOrderHold", "Zoh", [rl])
    acc = b.accumulator("Acc", b.quantizer("Qz", x, 0.5), dtype=F64)
    total = b.sum_("Total", [mem, dl, integ, deriv, zoh, acc], dtype=F64)
    b.outport("Out", total)
    return b.build(), lambda: {"X": UniformRandomStimulus(14, -1.0, 1.0)}


def zoo_sources():
    """Every generator source, mixed into one output."""
    b = ModelBuilder("Sources")
    x = b.inport("X", dtype=F64)
    clk = b.block("Clock", "Clk")
    cnt = b.counter("Cnt", limit=7)
    sine = b.block("SineWave", "Sine",
                   params={"frequency": 0.01, "amplitude": 2.0, "phase": 0.3,
                           "bias": 0.1})
    ramp = b.block("RampSource", "Ramp", params={"slope": 0.001, "start": -1.0})
    stp = b.block("StepSource", "Stp", params={"at": 20, "before": 0.0, "after": 2.5})
    pls = b.block("PulseGenerator", "Pls",
                  params={"period": 9, "duty": 3, "amplitude": 1.5})
    rnd = b.block("RandomSource", "Rnd",
                  params={"dist": "uniform", "lo": -1.0, "hi": 1.0, "seed": 42})
    rndi = b.block("RandomSource", "RndI",
                   params={"dist": "int", "lo": -5, "hi": 5, "seed": 43})
    gnd = b.block("Ground", "Gnd")
    cntf = b.gain("CntF", cnt, 1.0)
    rif = b.gain("RiF", rndi, 1.0)
    total = b.sum_("Total", [x, clk, sine, ramp, stp, pls, rnd, gnd, cntf, rif],
                   dtype=F64)
    b.outport("Out", total)
    return b.build(), lambda: {"X": UniformRandomStimulus(15, 0.0, 1.0)}


def zoo_guarded():
    """Enabled subsystems (incl. nested) with Merge combination."""
    b = ModelBuilder("Guarded")
    x = b.inport("X", dtype=I32)
    hot = b.relational("Hot", ">", x, b.constant("K2", 2))
    cold = b.relational("Cold", "<", x, b.constant("Km2", -2))

    s1 = b.subsystem("HotPath", inputs=[x])
    g1 = s1.inner.gain("Boost", s1.input_ref(0), 10)
    o1 = s1.set_output(g1)
    s1.set_enable(hot)

    s2 = b.subsystem("ColdPath", inputs=[x])
    inner2 = s2.inner.gain("Chill", s2.input_ref(0), -10)
    nested = s2.inner.subsystem("Deep", inputs=[inner2])
    deep = nested.inner.bias("DeepOff", nested.input_ref(0), 100)
    nested_out = nested.set_output(deep)
    nested.set_enable(
        s2.inner.relational("VeryCold", "<", s2.input_ref(0),
                            s2.inner.constant("Km5", -5))
    )
    o2 = s2.set_output(nested_out)
    s2.set_enable(cold)

    merged = b.merge("Pick", [o1, o2], dtype=I32)
    b.outport("Out", merged)
    b.outport("RawHot", o1)
    return b.build(), lambda: {"X": IntRandomStimulus(16, -10, 10)}


def zoo_stores():
    """Data stores: read-before-write ordering, checked write casts."""
    b = ModelBuilder("Stores")
    x = b.inport("X", dtype=I32)
    total = b.data_store("total", dtype=I32, initial=100)
    narrow = b.data_store("narrow", dtype=I8, initial=0)
    t = b.ds_read("RdT", total)
    n = b.ds_read("RdN", narrow)
    summed = b.add("Sum", t, x, dtype=I32)
    b.ds_write("WrT", total, summed)
    b.ds_write("WrN", narrow, summed)  # narrowing write: wrap diagnostics
    combined = b.add("Comb", summed, b.dtc("NUp", n, I32), dtype=I32)
    b.outport("Out", combined)
    return b.build(), lambda: {"X": IntRandomStimulus(17, -50, 50)}


def zoo_mixed_types():
    """Casts across the whole dtype lattice, incl. bool and signum/minmax."""
    b = ModelBuilder("MixedTypes")
    x = b.inport("X", dtype=I64)
    f = b.inport("F", dtype=F64)
    to8 = b.dtc("To8", x, I8)
    tou16 = b.dtc("ToU16", x, U16)
    tof = b.dtc("ToF", x, F64)
    fi = b.dtc("FI", b.gain("Big", f, 1e4), I32)
    sg = b.sign("Sg", x, dtype=I64)
    mm = b.min_max("Mm", "max", [to8, b.dtc("U16d", tou16, I8)], dtype=I8)
    bl = b.relational("Bl", ">", f, b.constant("Half", 0.5))
    blu = b.dtc("BlUp", bl, I32)
    t1 = b.dtc("T1", mm, I32)
    t2 = b.dtc("T2", sg, I32)
    t3 = b.dtc("T3", tof, I32)
    total = b.sum_("Total", [fi, blu, t1, t2, t3], dtype=I32)
    b.outport("Out", total)
    return b.build(), lambda: {
        "X": IntRandomStimulus(18, -(2**40), 2**40),
        "F": UniformRandomStimulus(19, -1.0, 1.0),
    }


def zoo_sequence_inputs():
    """Sequence/constant stimuli: deterministic, includes a zero divisor."""
    b = ModelBuilder("SeqIn")
    x = b.inport("X", dtype=I32)
    y = b.inport("Y", dtype=I32)
    d = b.div("D", x, y, dtype=I32)  # hits division by zero
    r = b.block("Math", "Rec", [b.gain("F", y, 1.0)], operator="reciprocal")
    b.outport("Out", d)
    b.outport("OutR", r)
    return b.build(), lambda: {
        "X": SequenceStimulus([10, -7, 3, 0, 22]),
        "Y": SequenceStimulus([2, 0, -3, 5]),
    }


def zoo_continuous():
    """Continuous-model extension: Adams-Bashforth integrators, including
    a closed feedback loop (dy/dt = u - y)."""
    b = ModelBuilder("Continuous")
    u = b.inport("U", dtype=F64)
    eul = b.continuous_integrator("Euler", u, solver="euler", initial=0.5)
    ab2 = b.continuous_integrator("Ab2", u, solver="ab2")
    # Feedback: dy/dt = u - y (first-order lag through AB3).
    err = b.sub("Err", u, ("Lag", 0))
    b.block("ContinuousIntegrator", "Lag", [err],
            params={"solver": "ab3", "initial": 0.0}, out_dtype=F64)
    total = b.sum_("Total", [eul, ab2, ("Lag", 0)], dtype=F64)
    b.outport("Out", total)
    return b.build(), lambda: {"U": UniformRandomStimulus(21, -1.0, 1.0)}


ZOO = {
    "int_arith": zoo_int_arith,
    "continuous": zoo_continuous,
    "unsigned": zoo_unsigned,
    "float_pipeline": zoo_float_pipeline,
    "f32": zoo_f32,
    "logic_decisions": zoo_logic_decisions,
    "control": zoo_control,
    "stateful": zoo_stateful,
    "sources": zoo_sources,
    "guarded": zoo_guarded,
    "stores": zoo_stores,
    "mixed_types": zoo_mixed_types,
    "sequence_inputs": zoo_sequence_inputs,
}

"""Property tests: persistence layers are lossless on random models."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.slx import generic_to_model, model_to_generic, model_to_xml, parse_model

from test_property_equivalence import random_model

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**_SETTINGS)
@given(random_model())
def test_xml_roundtrip_random_models(case):
    model, _ = case
    xml1 = model_to_xml(model)
    xml2 = model_to_xml(parse_model(xml1))
    assert xml1 == xml2


@settings(**_SETTINGS)
@given(random_model())
def test_generic_ir_roundtrip_random_models(case):
    model, _ = case
    again = generic_to_model(model_to_generic(model))
    assert model_to_xml(again) == model_to_xml(model)


@settings(**_SETTINGS)
@given(random_model())
def test_formats_compose(case):
    """XML -> Model -> JSON -> Model -> XML is still the identity."""
    model, _ = case
    via_xml = parse_model(model_to_xml(model))
    via_json = generic_to_model(model_to_generic(via_xml))
    assert model_to_xml(via_json) == model_to_xml(model)

"""§3.4 implementation claims — template library breadth and codegen cost.

The paper: "specialized code template libraries have been crafted for over
fifty commonly used actors" and "a diagnostic code template library
encompassing all error types that Simulink defaults to enable".  This
bench verifies both inventories against the registry and measures the
generation/compilation pipeline's throughput (the fixed cost AccMoS pays
before its fast simulation starts).
"""

from __future__ import annotations

import pytest

from repro import SimulationOptions
from repro.actors import all_specs
from repro.benchmarks import benchmark_stimuli
from repro.codegen import generate_c_program
from repro.codegen.driver import compile_c_program
from repro.diagnosis.events import DiagnosticKind
from repro.instrument import build_plan

from conftest import report_json, report_table


def test_template_library_inventory(benchmark):
    from repro.codegen.templates import OUTPUT_EMITTERS

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    specs = all_specs()
    executable = [name for name, spec in specs.items() if spec.executable]
    assert len(executable) >= 50
    missing = [name for name in executable if name not in OUTPUT_EMITTERS]
    assert not missing

    by_category: dict[str, int] = {}
    for name, spec in specs.items():
        by_category[spec.category] = by_category.get(spec.category, 0) + 1
    rows = [f"actor templates: {len(executable)} executable types "
            f"({len(specs)} registered)"]
    for category, count in sorted(by_category.items()):
        rows.append(f"  {category:8s} {count}")
    diag_kinds = [k.value for k in DiagnosticKind]
    rows.append(f"diagnostic template kinds: {len(diag_kinds)} "
                f"({', '.join(diag_kinds)})")
    report_table("Sec. 3.4: template library inventory", "\n".join(rows))
    report_json(
        "template_library",
        {"executable_types": len(executable), "registered": len(specs)},
        [
            {"category": category, "count": count}
            for category, count in sorted(by_category.items())
        ],
        "count",
    )


def test_all_default_error_types_covered(benchmark):
    """Every runtime-diagnosable kind is applicable somewhere in the
    registry's rule table (wired to at least one actor type)."""
    from repro.benchmarks import build_benchmark
    from repro.diagnosis.rules import applicable_kinds
    from repro.schedule import preprocess

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    seen: set[DiagnosticKind] = set()
    for name in ("CSEV", "LANS", "SPV", "FMTM"):
        prog = preprocess(build_benchmark(name))
        for fa in prog.actors:
            seen |= applicable_kinds(fa)
    assert {
        DiagnosticKind.WRAP_ON_OVERFLOW,
        DiagnosticKind.DIV_BY_ZERO,
        DiagnosticKind.PRECISION_LOSS,
        DiagnosticKind.NON_FINITE,
        DiagnosticKind.ARRAY_OUT_OF_BOUNDS,
    } <= seen


@pytest.mark.parametrize("name", ["CSEV", "LANS"])
def test_codegen_throughput(benchmark, programs, name):
    """C source generation speed for a full benchmark model."""
    if name not in programs:
        pytest.skip(f"{name} excluded by ACCMOS_BENCH_MODELS")
    prog = programs[name]
    plan = build_plan(prog)
    stimuli = benchmark_stimuli(prog)
    options = SimulationOptions(steps=1000)

    source, _ = benchmark(
        lambda: generate_c_program(prog, plan, stimuli, options)
    )
    assert "int main(void)" in source


@pytest.mark.parametrize("name", ["CSEV"])
def test_compile_throughput(benchmark, programs, name):
    """gcc -O3 compilation cost for a generated simulation."""
    if name not in programs:
        pytest.skip(f"{name} excluded by ACCMOS_BENCH_MODELS")
    prog = programs[name]
    plan = build_plan(prog)
    source, layout = generate_c_program(
        prog, plan, benchmark_stimuli(prog), SimulationOptions(steps=1000)
    )
    compiled = benchmark.pedantic(
        lambda: compile_c_program(source, layout), rounds=1, iterations=1
    )
    assert compiled.binary.exists()

#!/usr/bin/env python
"""Compare a fresh bench result against its committed baseline.

Benchmarks drop machine-readable ``results/<bench>.json`` files (see
``conftest.report_json``); a curated subset is committed under
``baselines/``.  This script guards one metric of one bench against
regression:

    python benchmarks/check_perf_regression.py \
        --bench adaptive_scheduler --metric speedup_vs_wave \
        --tolerance 0.25

Fails (exit 1) when the fresh metric is below
``baseline * (1 - tolerance)``.  Only *relative* metrics (speedups,
ratios) are meaningfully comparable across machines — absolute
cases/second baselines would churn with every runner change, so don't
commit those.  A missing fresh result is an error (the bench did not
run); a missing baseline is a pass with a note (nothing to guard yet).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).parent
RESULTS_DIR = HERE / "results"
BASELINES_DIR = HERE / "baselines"


def _metric(payload: dict, metric: str) -> float:
    """Find `metric` in the samples list (first sample that carries it)."""
    for sample in payload.get("samples", []):
        if isinstance(sample, dict) and metric in sample:
            return float(sample[metric])
    raise KeyError(
        f"metric {metric!r} not found in any sample of "
        f"{payload.get('bench', '?')!r}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="adaptive_scheduler")
    parser.add_argument("--metric", default="speedup_vs_wave")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional shortfall vs baseline")
    args = parser.parse_args(argv)

    fresh_path = RESULTS_DIR / f"{args.bench}.json"
    base_path = BASELINES_DIR / f"{args.bench}.json"
    if not fresh_path.exists():
        print(f"FAIL: no fresh result at {fresh_path} — did the bench run?")
        return 1
    if not base_path.exists():
        print(f"PASS: no committed baseline at {base_path}; nothing to "
              f"guard (commit one to arm this check)")
        return 0

    fresh = _metric(json.loads(fresh_path.read_text()), args.metric)
    base = _metric(json.loads(base_path.read_text()), args.metric)
    floor = base * (1.0 - args.tolerance)
    verdict = "PASS" if fresh >= floor else "FAIL"
    print(f"{verdict}: {args.bench}.{args.metric} fresh={fresh:.3f} "
          f"baseline={base:.3f} floor={floor:.3f} "
          f"(tolerance {args.tolerance:.0%})")
    return 0 if fresh >= floor else 1


if __name__ == "__main__":
    sys.exit(main())

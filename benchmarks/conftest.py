"""Shared infrastructure for the paper-reproduction benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation.  Reproduced tables are registered with :func:`report_table`;
they are printed in the terminal summary at the end of the run and written
to ``benchmarks/results/``.

Environment knobs (this substrate is a laptop, not the paper's testbed):

* ``ACCMOS_BENCH_STEPS``   — Table-2 step count (default 10000; the paper
  uses 50 million on native Simulink);
* ``ACCMOS_BENCH_BUDGETS`` — Table-3 wall-clock budgets in seconds,
  comma-separated (default ``0.5,1.5,6.0``, a 10x scale-down of the
  paper's 5/15/60 s);
* ``ACCMOS_BENCH_MODELS``  — comma-separated subset of model names.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))

RESULTS_DIR = Path(__file__).parent / "results"

_TABLES: list[tuple[str, str]] = []


def bench_steps() -> int:
    return int(os.environ.get("ACCMOS_BENCH_STEPS", "10000"))


def bench_budgets() -> list[float]:
    raw = os.environ.get("ACCMOS_BENCH_BUDGETS", "0.5,1.5,6.0")
    return [float(part) for part in raw.split(",") if part.strip()]


def bench_models() -> list[str]:
    from repro.benchmarks import TABLE1

    raw = os.environ.get("ACCMOS_BENCH_MODELS", "")
    if not raw.strip():
        return list(TABLE1)
    return [name.strip().upper() for name in raw.split(",") if name.strip()]


def report_table(title: str, text: str) -> None:
    """Register a reproduced table for the terminal summary + results dir."""
    _TABLES.append((title, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = "".join(c if c.isalnum() else "_" for c in title.lower()).strip("_")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")


def report_json(bench: str, config: dict, samples, unit: str) -> Path:
    """Machine-readable companion to :func:`report_table`.

    Writes ``results/<bench>.json`` with the fixed schema
    ``{bench, config, samples, unit}`` — ``samples`` is a list (numbers
    or per-row objects), ``unit`` names what the numeric values mean —
    so downstream tooling can diff runs without parsing the text tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench": bench,
        "config": config,
        "samples": list(samples),
        "unit": unit,
    }
    target = RESULTS_DIR / f"{bench}.json"
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section("reproduced paper tables")
    for title, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {title} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def programs():
    """Preprocessed FlatPrograms for the selected benchmark models."""
    from repro.benchmarks import build_benchmark
    from repro.schedule import preprocess

    return {name: preprocess(build_benchmark(name)) for name in bench_models()}

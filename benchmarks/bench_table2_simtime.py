"""Table 2 — simulation-time comparison.

For every benchmark model, run the same random test cases for the same
step count on all four engines and report wall times plus the AccMoS
improvement ratios — the paper's Table 2 shape:

* AccMoS beats SSE by orders of magnitude (paper: 215.3x average);
* the ordering SSE > SSE_ac > SSE_rac > AccMoS holds per model;
* computation-heavy models (LANS, LEDLC, SPV, TCP) sit at the top of the
  improvement range.

Step count via ``ACCMOS_BENCH_STEPS`` (default 10000; the paper's native
testbed uses 50 million — our SSE substrate is a Python interpreter, so
the default keeps a full 10-model sweep to a few minutes).
"""

from __future__ import annotations

import statistics

import pytest

from repro import SimulationOptions, simulate
from repro.benchmarks import benchmark_stimuli

from conftest import bench_models, bench_steps, report_json, report_table

COMPUTE_HEAVY = ("LANS", "LEDLC", "SPV", "TCP")

_results: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("name", bench_models())
def test_simulation_time_all_engines(benchmark, programs, name):
    prog = programs[name]
    steps = bench_steps()
    times: dict[str, float] = {}
    checksums = {}

    def run_engine(engine, n_steps=steps):
        result = simulate(
            prog, benchmark_stimuli(prog), engine=engine,
            options=SimulationOptions(steps=n_steps),
        )
        times[engine] = result.wall_time * (steps / n_steps)
        checksums[engine] = result.checksums
        return result

    for engine in ("sse", "sse_ac", "sse_rac"):
        run_engine(engine)
    # A 10k-step AccMoS run finishes in fractions of a millisecond —
    # timer noise and fixed startup dominate.  Run it 50x longer and
    # report the per-step-equivalent time (the paper amortizes over 50M
    # steps); the checksum comparison below still uses a matched-length
    # run.
    benchmark.pedantic(
        lambda: run_engine("accmos", n_steps=steps * 50),
        rounds=1, iterations=1,
    )
    accmos_matched = simulate(
        prog, benchmark_stimuli(prog), engine="accmos",
        options=SimulationOptions(steps=steps),
    )
    checksums["accmos_matched"] = accmos_matched.checksums

    # All engines computed the same simulation.
    for engine in ("sse_ac", "sse_rac", "accmos_matched"):
        assert checksums[engine] == checksums["sse"], engine
    # The paper's speed ordering.
    assert times["sse"] > times["sse_ac"] > times["sse_rac"] > times["accmos"]
    _results[name] = times


def test_table2_report(benchmark, programs):
    if not _results:
        pytest.skip("per-model timings did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    steps = bench_steps()
    rows = [
        f"(steps per run: {steps:,}; paper uses 50,000,000 on native Simulink)",
        f"{'Model':6s} {'AccMoS':>9s} {'SSE':>9s} {'SSE_ac':>9s} {'SSE_rac':>9s}"
        f" | {'vs SSE':>8s} {'vs ac':>8s} {'vs rac':>8s}",
    ]
    ratios = {"sse": [], "sse_ac": [], "sse_rac": []}
    for name, times in _results.items():
        acc = max(times["accmos"], 1e-9)
        r_sse = times["sse"] / acc
        r_ac = times["sse_ac"] / acc
        r_rac = times["sse_rac"] / acc
        ratios["sse"].append(r_sse)
        ratios["sse_ac"].append(r_ac)
        ratios["sse_rac"].append(r_rac)
        rows.append(
            f"{name:6s} {times['accmos']:8.4f}s {times['sse']:8.2f}s "
            f"{times['sse_ac']:8.2f}s {times['sse_rac']:8.2f}s | "
            f"{r_sse:7.1f}x {r_ac:7.1f}x {r_rac:7.1f}x"
        )
    rows.append(
        f"{'mean':6s} {'':9s} {'':9s} {'':9s} {'':9s} | "
        f"{statistics.mean(ratios['sse']):7.1f}x "
        f"{statistics.mean(ratios['sse_ac']):7.1f}x "
        f"{statistics.mean(ratios['sse_rac']):7.1f}x"
    )
    rows.append("(paper means: 215.3x vs SSE, 76.32x vs SSE_ac, 19.8x vs SSE_rac)")
    report_table("Table 2: comparison of simulation time", "\n".join(rows))
    report_json(
        "table2_simtime",
        {"steps": steps},
        [{"model": name, **times} for name, times in _results.items()],
        "seconds",
    )

    # Shape assertions: big speedups, and the computation-heavy models lean
    # toward the top of the ratio ranking (our substrate's cost model is not
    # the paper's testbed, so the exact ordering differs; see EXPERIMENTS.md).
    assert statistics.mean(ratios["sse"]) > 50
    if len(_results) == 10:
        by_ratio = sorted(
            _results, key=lambda n: _results[n]["sse"] / _results[n]["accmos"],
            reverse=True,
        )
        top_half = set(by_ratio[:5])
        assert len(top_half & set(COMPUTE_HEAVY)) >= 2
        assert by_ratio[0] in COMPUTE_HEAVY  # LANS-like models lead

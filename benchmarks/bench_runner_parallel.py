"""Runner subsystem — artifact-cache hit rate and parallel campaign scaling.

Demonstrates the two claims the `repro.runner` subsystem makes:

* a cache *hit* costs ~zero compile time (the gcc invocation vanishes:
  the second simulation of an unchanged model is served straight from
  the content-addressed store);
* a seed-sweep campaign with ``workers > 1`` overlaps its per-seed
  compiles and binary runs, cutting wall time on multi-core hosts while
  producing a bit-identical merged coverage report.

Knobs: ``ACCMOS_BENCH_SEEDS`` (default 8 campaign cases) and
``ACCMOS_BENCH_WORKERS`` (default 4).  Single-core containers will show
speedup ≈ 1x — the merge-identity check still runs.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro import SimulationOptions
from repro.benchmarks import build_benchmark
from repro.campaign import run_campaign
from repro.runner import ArtifactCache
from repro.schedule import preprocess

from conftest import report_json, report_table

MODEL = "SPV"
STEPS = 500


def _seeds() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SEEDS", "8"))


def _workers() -> int:
    return int(os.environ.get("ACCMOS_BENCH_WORKERS", "4"))


def test_cache_hit_compile_time():
    """1 miss then N hits: compile time collapses to a cache lookup."""
    from repro.engines import run_accmos
    from repro.stimuli import default_stimuli

    prog = preprocess(build_benchmark(MODEL))
    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(tmp)
        times = []
        stimuli = default_stimuli(prog, seed=1)
        options = SimulationOptions(steps=STEPS)
        for _ in range(4):
            result = run_accmos(prog, stimuli, options, cache=cache)
            times.append(
                (result.extra["compile_seconds"], result.extra["cache_hit"])
            )
        stats = cache.stats()

    assert [hit for _, hit in times] == [False, True, True, True]
    assert stats.misses == 1 and stats.hits == 3
    miss = times[0][0]
    hits = [t for t, _ in times[1:]]
    lines = [
        f"model {MODEL}, {STEPS} steps - compile_seconds per run:",
        f"  run 1 (miss) : {miss:.4f}s  [gcc invoked]",
    ]
    for i, t in enumerate(hits, start=2):
        lines.append(f"  run {i} (hit)  : {t:.6f}s  [cache lookup only]")
    lines.append(
        f"  hit/miss ratio: {min(hits) / miss:.2%} "
        f"(zero compiler invocations after the first run)"
    )
    report_table("Runner: cache-hit compile time", "\n".join(lines))
    report_json(
        "runner_cache_hit",
        {"model": MODEL, "steps": STEPS},
        [
            {"run": i + 1, "cache_hit": hit, "compile_seconds": t}
            for i, (t, hit) in enumerate(times)
        ],
        "seconds",
    )
    assert min(hits) < miss / 10  # a hit must be >10x cheaper than gcc


def test_parallel_campaign_scaling():
    """Same campaign, cold cache each time, workers=1 vs workers=N."""
    prog = preprocess(build_benchmark(MODEL))
    seeds, workers = _seeds(), _workers()

    def timed(n_workers):
        with tempfile.TemporaryDirectory() as tmp:
            cache = ArtifactCache(tmp)
            start = time.perf_counter()
            outcome = run_campaign(
                prog, steps=STEPS, max_cases=seeds,
                plateau_patience=seeds + 1, cache=cache, workers=n_workers,
            )
            return time.perf_counter() - start, outcome

    t_serial, serial = timed(1)
    t_parallel, parallel = timed(workers)

    assert parallel.merged.bitmaps == serial.merged.bitmaps
    assert [c.seed for c in parallel.cases] == [c.seed for c in serial.cases]

    cores = os.cpu_count() or 1
    lines = [
        f"model {MODEL}, {seeds} seeds x {STEPS} steps "
        f"({cores} core(s) available):",
        f"  workers=1          : {t_serial:.2f}s",
        f"  workers={workers:<2d}         : {t_parallel:.2f}s",
        f"  speedup            : {t_serial / t_parallel:.2f}x",
        "  merged coverage    : bit-identical"
        " (ordered merge, deterministic)",
    ]
    report_table("Runner: parallel campaign scaling", "\n".join(lines))
    report_json(
        "runner_parallel_scaling",
        {"model": MODEL, "steps": STEPS, "seeds": seeds, "workers": workers},
        [
            {"workers": 1, "wall_time": t_serial},
            {"workers": workers, "wall_time": t_parallel},
        ],
        "seconds",
    )

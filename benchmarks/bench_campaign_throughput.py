"""Campaign throughput — the compile-once / run-many payoff.

The paper's workflow is many test cases against one model.  Before this
optimization every case paid its own codegen + gcc; now one
stimulus-agnostic binary serves the whole campaign (a single compiler
invocation, cold cache) and ``batch_size`` cases run back-to-back per
process spawn.  This bench measures cases/second through four regimes:

* ``per-case-compile`` — the old cost model: every case generates and
  compiles its own program (cache disabled);
* ``campaign serial``  — compile once via the artifact cache, one
  process spawn per case (``workers=1, batch_size=1``);
* ``campaign parallel`` — the same, fanned out over workers;
* ``campaign batched``  — workers x batch_size cases per wave, each
  batch one process running many cases on the reused binary.

Asserted claims: the batched campaign does **exactly one** compiler
invocation from a cold cache, is at least 5x the per-case-compile
throughput, and its results are byte-identical to the interpreted SSE
reference.

Knobs: ``ACCMOS_BENCH_CAMPAIGN_CASES`` (default 100),
``ACCMOS_BENCH_CAMPAIGN_STEPS`` (default 2000), ``ACCMOS_BENCH_WORKERS``
(default 4), ``ACCMOS_BENCH_BATCH`` (default 8).  The per-case-compile
baseline is timed over at most 10 cases (its per-case cost is constant —
that's the very pathology being removed) and reported as a rate.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro import SimulationOptions, simulate
from repro.benchmarks import build_benchmark
from repro.campaign import run_campaign
from repro.engines import run_accmos
from repro.runner import ArtifactCache
from repro.schedule import preprocess
from repro.stimuli import default_stimuli

from conftest import report_json, report_table
from helpers import assert_results_agree

MODEL = "SPV"


def _cases() -> int:
    return int(os.environ.get("ACCMOS_BENCH_CAMPAIGN_CASES", "100"))


def _steps() -> int:
    return int(os.environ.get("ACCMOS_BENCH_CAMPAIGN_STEPS", "2000"))


def _workers() -> int:
    return int(os.environ.get("ACCMOS_BENCH_WORKERS", "4"))


def _batch() -> int:
    return int(os.environ.get("ACCMOS_BENCH_BATCH", "8"))


def test_campaign_throughput():
    prog = preprocess(build_benchmark(MODEL))
    cases, steps = _cases(), _steps()
    workers, batch = _workers(), _batch()
    campaign_kwargs = dict(
        steps=steps, max_cases=cases, plateau_patience=cases + 1,
    )

    # Baseline: every case compiles its own program (the pre-optimization
    # cost model).  Constant per-case cost, so a small sample suffices.
    baseline_cases = min(cases, 10)
    options = SimulationOptions(steps=steps)
    start = time.perf_counter()
    for seed in range(1, baseline_cases + 1):
        run_accmos(
            prog, default_stimuli(prog, seed=seed), options, cache=False
        )
    baseline_rate = baseline_cases / (time.perf_counter() - start)

    def timed_campaign(n_workers, batch_size):
        with tempfile.TemporaryDirectory() as tmp:
            cache = ArtifactCache(tmp)
            start = time.perf_counter()
            outcome = run_campaign(
                prog, workers=n_workers, batch_size=batch_size,
                cache=cache, **campaign_kwargs,
            )
            elapsed = time.perf_counter() - start
            return outcome, cases / elapsed, cache.stats()

    serial, serial_rate, _ = timed_campaign(1, 1)
    parallel, parallel_rate, _ = timed_campaign(workers, 1)
    batched, batched_rate, batched_stats = timed_campaign(workers, batch)

    # One binary, one gcc: the whole cold-cache campaign misses once.
    assert batched_stats.misses == 1, batched_stats
    # Batching cannot change outcomes, only speed.
    assert batched.merged.bitmaps == serial.merged.bitmaps
    assert [c.seed for c in batched.cases] == [c.seed for c in serial.cases]

    # Byte-identity against the interpreted reference for a spot seed.
    seed = 1 + cases // 2
    stimuli = default_stimuli(prog, seed=seed)
    assert_results_agree(
        simulate(prog, stimuli, engine="sse", options=options),
        run_accmos(prog, stimuli, options, cache=False),
    )

    rows = [
        ("per-case-compile", 1, 1, baseline_rate),
        ("campaign serial", 1, 1, serial_rate),
        ("campaign parallel", workers, 1, parallel_rate),
        ("campaign batched", workers, batch, batched_rate),
    ]
    lines = [
        f"model {MODEL}, {steps} steps/case, {cases} cases "
        f"(baseline sampled over {baseline_cases}):",
        f"  {'regime':<18s} {'workers':>7s} {'batch':>5s} "
        f"{'cases/sec':>10s} {'vs baseline':>11s}",
    ]
    for name, w, b, rate in rows:
        lines.append(
            f"  {name:<18s} {w:7d} {b:5d} {rate:10.2f} "
            f"{rate / baseline_rate:10.1f}x"
        )
    lines.append(
        f"  compiler invocations, batched cold-cache campaign: "
        f"{batched_stats.misses}"
    )
    report_table("Campaign throughput (compile-once / run-many)",
                 "\n".join(lines))
    report_json(
        "campaign_throughput",
        {
            "model": MODEL, "steps": steps, "cases": cases,
            "workers": workers, "batch_size": batch,
            "baseline_cases": baseline_cases,
        },
        [
            {"regime": name, "workers": w, "batch_size": b,
             "cases_per_sec": rate}
            for name, w, b, rate in rows
        ],
        "cases/second",
    )

    assert batched_rate >= 5.0 * baseline_rate, (
        f"batched campaign {batched_rate:.2f} cases/s is less than 5x the "
        f"per-case-compile baseline {baseline_rate:.2f} cases/s"
    )

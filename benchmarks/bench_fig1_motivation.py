"""Figure 1 / §1 motivation — time to detect a long-run integer overflow.

The sample model accumulates two inputs and sums the accumulators; the
int32 Sum eventually wraps.  The paper measures 184.74 s to find the wrap
with SSE vs 0.37 s with hand-written C (~500x); AccMoS automates exactly
that translation.  Here both engines run until their first
wrap-on-overflow diagnostic and must stop at the *same step*.
"""

from __future__ import annotations

import pytest

from repro import DiagnosticKind, SimulationOptions, simulate
from repro.benchmarks.motivating import (
    build_motivating_model,
    expected_overflow_step,
    motivating_stimuli,
)
from repro.schedule import preprocess

from conftest import report_json, report_table

HALT = frozenset({DiagnosticKind.WRAP_ON_OVERFLOW})


@pytest.fixture(scope="module")
def prog():
    return preprocess(build_motivating_model())


def _detect(prog, engine):
    options = SimulationOptions(steps=5_000_000, halt_on=HALT)
    return simulate(prog, motivating_stimuli(), engine=engine, options=options)


def test_fig1_detection_time(benchmark, prog):
    sse = _detect(prog, "sse")
    acc = benchmark.pedantic(
        lambda: _detect(prog, "accmos"), rounds=1, iterations=1
    )

    assert sse.halted_at is not None, "SSE must find the overflow"
    assert acc.halted_at == sse.halted_at, "same error, same step"
    estimate = expected_overflow_step()
    assert 0.3 * estimate < sse.halted_at < 3 * estimate

    speedup = sse.wall_time / max(acc.wall_time, 1e-9)
    assert speedup > 100, "code-based detection must be orders faster"

    rows = [
        f"overflow first wraps at step {sse.halted_at:,}",
        f"{'engine':8s} {'wall time':>12s} {'detected':>10s}",
        f"{'SSE':8s} {sse.wall_time:11.3f}s {'yes':>10s}",
        f"{'AccMoS':8s} {acc.wall_time:11.5f}s {'yes':>10s}",
        f"speedup: {speedup:,.0f}x  "
        f"(paper: 184.74s vs 0.37s hand-written C, ~500x)",
        f"(AccMoS generate+compile overhead, excluded above: "
        f"{acc.extra['generate_seconds'] + acc.extra['compile_seconds']:.2f}s)",
    ]
    report_table("Figure 1: motivating overflow detection", "\n".join(rows))
    report_json(
        "fig1_motivation",
        {"halted_at": sse.halted_at},
        [
            {"engine": "sse", "wall_time": sse.wall_time},
            {"engine": "accmos", "wall_time": acc.wall_time},
        ],
        "seconds",
    )


def test_fig1_diagnostic_content(benchmark, prog):
    """The diagnostic carries the Figure-4-style information: the actor
    path and the wrap kind, at its first occurrence."""
    result = benchmark.pedantic(
        lambda: _detect(prog, "accmos"), rounds=1, iterations=1
    )
    event = result.diagnostic("Motivate_Sum", DiagnosticKind.WRAP_ON_OVERFLOW)
    assert event is not None
    assert event.first_step == result.halted_at
    assert "Wrap on overflow" in str(event)

"""Table 3 — coverage achieved within equal wall-clock budgets.

For each model and each time budget, run AccMoS and SSE with identical
random test cases and report all four coverage metrics (actor, condition,
decision, MC/DC).  The paper's shape:

* AccMoS's coverage at the *smallest* budget already beats SSE's at the
  *largest* budget for almost every model (it executes orders of magnitude
  more steps, reaching the rare/late-enabled regions);
* both engines saturate below 100% (regions unreachable with random
  inputs cap the ceiling);
* coverage is monotone in budget for each engine.

Budgets via ``ACCMOS_BENCH_BUDGETS`` (default 0.5/1.5/6.0 s — a 10x
scale-down of the paper's 5/15/60 s wall-clock budgets).
"""

from __future__ import annotations

import pytest

from repro import SimulationOptions, simulate
from repro.benchmarks import benchmark_stimuli
from repro.coverage import Metric

from conftest import bench_budgets, bench_models, report_json, report_table

HUGE_STEPS = 2_000_000_000

_rows: dict[str, dict[float, dict[str, dict[Metric, float]]]] = {}


def _coverage(prog, engine, budget):
    options = SimulationOptions(
        steps=HUGE_STEPS, time_budget=budget, diagnostics=False,
        checksum=False,
    )
    result = simulate(prog, benchmark_stimuli(prog), engine=engine,
                      options=options)
    return {metric: result.coverage.percent(metric) for metric in Metric}


@pytest.mark.parametrize("name", bench_models())
def test_coverage_within_budgets(benchmark, programs, name):
    prog = programs[name]
    budgets = bench_budgets()
    per_budget: dict[float, dict[str, dict[Metric, float]]] = {}

    def sweep():
        for budget in budgets:
            per_budget[budget] = {
                "accmos": _coverage(prog, "accmos", budget),
                "sse": _coverage(prog, "sse", budget),
            }

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    _rows[name] = per_budget

    largest, smallest = max(budgets), min(budgets)
    # AccMoS within the smallest budget reaches at least SSE's coverage at
    # the largest (the paper's headline observation, with TCP-like
    # late-converger slack of one metric).
    beats = sum(
        per_budget[smallest]["accmos"][m] >= per_budget[largest]["sse"][m]
        for m in Metric
    )
    assert beats >= 3, (name, per_budget)
    # Monotone in budget for each engine.
    for engine in ("accmos", "sse"):
        for metric in Metric:
            series = [per_budget[b][engine][metric] for b in sorted(budgets)]
            assert series == sorted(series), (name, engine, metric, series)
    # Ceilings below 100% actor coverage (unreachable regions exist).
    assert per_budget[largest]["accmos"][Metric.ACTOR] < 100.0


def test_table3_report(benchmark, programs):
    if not _rows:
        pytest.skip("per-model coverage did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    header = (
        f"{'Model':6s} {'Time':>6s} | "
        f"{'Actor':>13s} | {'Condition':>13s} | {'Decision':>13s} | {'MC/DC':>13s}"
    )
    sub = (
        f"{'':6s} {'(s)':>6s} | "
        + " | ".join(f"{'AccMoS':>6s} {'SSE':>6s}" for _ in range(4))
    )
    rows = [header, sub]
    for name, per_budget in _rows.items():
        for budget in sorted(per_budget):
            cells = []
            for metric in (Metric.ACTOR, Metric.CONDITION,
                           Metric.DECISION, Metric.MCDC):
                acc = per_budget[budget]["accmos"][metric]
                sse = per_budget[budget]["sse"][metric]
                cells.append(f"{acc:5.0f}% {sse:5.0f}%")
            rows.append(f"{name:6s} {budget:6.1f} | " + " | ".join(cells))
    rows.append("(paper: AccMoS at 5s beats SSE at 60s on every model but TCP)")
    report_table("Table 3: coverage of AccMoS and SSE", "\n".join(rows))
    report_json(
        "table3_coverage",
        {"budgets": bench_budgets()},
        [
            {
                "model": name,
                "budget": budget,
                "engine": engine,
                **{m.value: per_budget[budget][engine][m] for m in Metric},
            }
            for name, per_budget in _rows.items()
            for budget in sorted(per_budget)
            for engine in ("accmos", "sse")
        ],
        "percent",
    )

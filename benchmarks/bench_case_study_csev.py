"""§4 case study — error diagnosis on the CSEV charging system.

Two wrap-on-overflow errors are injected into CSEV exactly as in the
paper:

* error 1 (quantity store accumulator) only manifests after a long
  charging run — the paper detects it in 0.74 s with AccMoS vs 450.14 s
  with SSE (>99% reduction);
* error 2 (short-int charging-power product) manifests at the beginning —
  the paper sees a minimal gap (0.18..1.2 s) between engines.

The reproduced shape: both engines find both errors at identical steps;
the detection-time ratio is huge for error 1 and small in absolute terms
for error 2.
"""

from __future__ import annotations

import pytest

from repro import DiagnosticKind, SimulationOptions, simulate
from repro.benchmarks import benchmark_stimuli
from repro.benchmarks.inject import (
    POWER_PRODUCT_PATH,
    QUANTITY_ADD_PATH,
    build_csev_healthy,
    build_csev_with_power_downcast,
    build_csev_with_quantity_overflow,
)
from repro.schedule import preprocess

from conftest import report_json, report_table

HALT = frozenset({DiagnosticKind.WRAP_ON_OVERFLOW})


def _detect(prog, engine, steps=1_000_000):
    options = SimulationOptions(steps=steps, halt_on=HALT)
    return simulate(prog, benchmark_stimuli(prog), engine=engine,
                    options=options)


def test_healthy_model_is_clean(benchmark):
    prog = preprocess(build_csev_healthy())
    result = benchmark.pedantic(
        lambda: _detect(prog, "accmos", steps=500_000), rounds=1, iterations=1
    )
    assert result.halted_at is None


def test_case_study_detection_times(benchmark):
    rows = [
        f"{'error':28s} {'engine':8s} {'wall time':>12s} {'found at step':>14s}",
    ]

    # --- error 1: slow quantity overflow -------------------------------
    prog1 = preprocess(build_csev_with_quantity_overflow())
    sse1 = _detect(prog1, "sse")
    acc1 = benchmark.pedantic(
        lambda: _detect(prog1, "accmos"), rounds=1, iterations=1
    )
    assert sse1.halted_at == acc1.halted_at is not None
    assert sse1.halted_at > 10_000, "error 1 is a long-run error"
    event = acc1.diagnostic(QUANTITY_ADD_PATH, DiagnosticKind.WRAP_ON_OVERFLOW)
    assert event is not None
    ratio1 = sse1.wall_time / max(acc1.wall_time, 1e-9)
    assert ratio1 > 100
    rows.append(f"{'1: quantity overflow':28s} {'SSE':8s} "
                f"{sse1.wall_time:11.3f}s {sse1.halted_at:>14,}")
    rows.append(f"{'':28s} {'AccMoS':8s} "
                f"{acc1.wall_time:11.5f}s {acc1.halted_at:>14,}")
    reduction = 100.0 * (1.0 - acc1.wall_time / sse1.wall_time)
    rows.append(f"{'':28s} -> {reduction:.2f}% detection-time reduction "
                f"(paper: >99%, 450.14s -> 0.74s)")

    # --- error 2: immediate power downcast -----------------------------
    prog2 = preprocess(build_csev_with_power_downcast())
    sse2 = _detect(prog2, "sse", steps=50_000)
    acc2 = _detect(prog2, "accmos", steps=50_000)
    assert sse2.halted_at == acc2.halted_at is not None
    assert sse2.halted_at < 100, "error 2 manifests at the beginning"
    assert any(e.kind is DiagnosticKind.DOWNCAST
               and e.path == POWER_PRODUCT_PATH for e in acc2.diagnostics)
    rows.append(f"{'2: power downcast wrap':28s} {'SSE':8s} "
                f"{sse2.wall_time:11.5f}s {sse2.halted_at:>14,}")
    rows.append(f"{'':28s} {'AccMoS':8s} "
                f"{acc2.wall_time:11.5f}s {acc2.halted_at:>14,}")
    rows.append(f"{'':28s} -> both detect within a fraction of a second "
                f"(paper: 0.18..1.2s gap)")
    report_table("Case study: CSEV injected errors", "\n".join(rows))
    report_json(
        "case_study_csev",
        {"halt_on": "wrap_on_overflow"},
        [
            {"error": 1, "engine": "sse", "wall_time": sse1.wall_time,
             "found_at_step": sse1.halted_at},
            {"error": 1, "engine": "accmos", "wall_time": acc1.wall_time,
             "found_at_step": acc1.halted_at},
            {"error": 2, "engine": "sse", "wall_time": sse2.wall_time,
             "found_at_step": sse2.halted_at},
            {"error": 2, "engine": "accmos", "wall_time": acc2.wall_time,
             "found_at_step": acc2.halted_at},
        ],
        "seconds",
    )


def test_error1_condition_matches_figure4_semantics(benchmark):
    """The paper's detection condition at the add actor is
    ``in1 > 0 && in2 > 0 && out < 0``; the checked add raises its wrap
    flag at exactly the step where that condition first holds."""
    prog = preprocess(build_csev_with_quantity_overflow())
    add = prog.actor_by_path(QUANTITY_ADD_PATH)
    options = SimulationOptions(
        steps=100_000, halt_on=HALT, collect=[QUANTITY_ADD_PATH],
        monitor_limit=1,
    )
    result = benchmark.pedantic(
        lambda: simulate(prog, benchmark_stimuli(prog), engine="sse",
                         options=options),
        rounds=1, iterations=1,
    )
    assert result.halted_at is not None
    event = result.diagnostic(QUANTITY_ADD_PATH,
                              DiagnosticKind.WRAP_ON_OVERFLOW)
    assert event.first_step == result.halted_at
    # Up to the halt the quantity grew monotonically positive — the wrap
    # is the first step where Figure 4's in1>0 && in2>0 && out<0 holds.
    assert result.outputs["Quantity"] > 0

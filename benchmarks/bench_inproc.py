"""In-process shared library vs warm server vs spawn-per-batch.

The warm-server rung already amortized the process spawn; what remains
per case is the *pipe*: text encoding on the Python side, ``scanf`` on
the C side, frame parsing on the way back, plus two context switches per
line of protocol.  The in-process rung removes all of it — the case
travels as one packed binary record into ``acc_lib_run_case`` via
``ctypes``, and the result comes back as one packed buffer.  This bench
measures the three regimes on a pipe-bound small-case workload (short
cases, tiny batches — the shape where protocol overhead dominates):

* ``spawn-per-batch`` — ``CompiledModel.run_batch``: one fresh process
  per batch of cases;
* ``server-stream``   — ``ServerPool.run_batch``: the same batches
  streamed through one warm ``--serve`` process;
* ``inproc``          — ``CompiledModel.run_inproc``: the same batches
  pushed through the loaded shared library, zero processes.

Asserted claims: the inproc regime's results are byte-identical to both
process regimes, it spawns **zero** simulation processes, and its
throughput is at least 1.5x the server stream's.

Each regime is timed ``ACCMOS_BENCH_INPROC_REPEATS`` times (default 3)
and the best pass counts — scheduler noise only ever slows a run down.

Knobs: ``ACCMOS_BENCH_INPROC_BATCHES`` (default 40),
``ACCMOS_BENCH_INPROC_BATCH`` (default 2), ``ACCMOS_BENCH_INPROC_STEPS``
(default 32), ``ACCMOS_BENCH_INPROC_REPEATS`` (default 3), and
``ACCMOS_BENCH_INPROC_MIN_SPEEDUP`` (default 1.5; CI smoke relaxes it —
shared runners make tight perf ratios flaky).
"""

from __future__ import annotations

import os
import time

import pytest

from repro import SimulationOptions
from repro.benchmarks import build_benchmark
from repro.codegen.driver import supports_shared_objects
from repro.engines.accmos import compile_model
from repro.runner.servers import ServerPool
from repro.schedule import preprocess
from repro.stimuli import default_stimuli

from conftest import report_json, report_table
from helpers import assert_results_agree

MODEL = "SPV"


def _n_batches() -> int:
    return int(os.environ.get("ACCMOS_BENCH_INPROC_BATCHES", "40"))


def _batch() -> int:
    return int(os.environ.get("ACCMOS_BENCH_INPROC_BATCH", "2"))


def _steps() -> int:
    return int(os.environ.get("ACCMOS_BENCH_INPROC_STEPS", "32"))


def _repeats() -> int:
    return int(os.environ.get("ACCMOS_BENCH_INPROC_REPEATS", "3"))


def _min_speedup() -> float:
    return float(os.environ.get("ACCMOS_BENCH_INPROC_MIN_SPEEDUP", "1.5"))


def test_inproc_throughput():
    if supports_shared_objects() is not True:
        pytest.skip("toolchain cannot build loadable shared objects")

    prog = preprocess(build_benchmark(MODEL))
    steps, batch, n_batches = _steps(), _batch(), _n_batches()
    options = SimulationOptions(steps=steps)
    model = compile_model(prog, options, artifact="shared")
    model.compiled.ensure_binary()  # both forms ready before timing

    batches = [
        [
            (default_stimuli(prog, seed=1 + b * batch + i), options)
            for i in range(batch)
        ]
        for b in range(n_batches)
    ]
    n_cases = batch * n_batches
    repeats = _repeats()

    def _timed(run_all) -> float:
        start = time.perf_counter()
        run_all()
        return time.perf_counter() - start

    def best_rate(run_all) -> float:
        return max(
            n_cases / _timed(run_all) for _ in range(max(1, repeats))
        )

    # Spawn-per-batch regime; the first batch is an untimed warmup
    # (page cache, allocator) for every regime.
    spawn_ref = model.run_batch(batches[0])
    spawn_rate = best_rate(
        lambda: [model.run_batch(cases) for cases in batches]
    )

    # Server-stream regime: every batch rides the same warm server.
    pool = ServerPool(max_servers=2)
    try:
        serve_ref = pool.run_batch(model, batches[0])
        serve_rate = best_rate(
            lambda: [pool.run_batch(model, cases) for cases in batches]
        )
        pool_stats = pool.stats()
    finally:
        pool.close()

    # In-process regime: the warmup batch pays the one dlopen, so the
    # timed window is pure steady state.
    inproc_ref = model.run_inproc(batches[0])
    inproc_rate = best_rate(
        lambda: [model.run_inproc(cases) for cases in batches]
    )

    # Byte-identity across all three regimes (spot-checked on one batch).
    for spawn_result, serve_result, inproc_result in zip(
        spawn_ref, serve_ref, inproc_ref
    ):
        assert_results_agree(spawn_result, serve_result)
        assert_results_agree(spawn_result, inproc_result)

    # The inproc run never fell back to a process rung.
    assert model.inproc_available

    vs_serve = inproc_rate / serve_rate
    vs_spawn = inproc_rate / spawn_rate
    lines = [
        f"model {MODEL}, {steps} steps/case, {n_batches} batches x "
        f"{batch} cases ({n_cases} cases), best of {repeats}:",
        f"  {'regime':<18s} {'cases/sec':>10s} {'speedup':>8s} "
        f"{'processes':>10s}",
        f"  {'spawn-per-batch':<18s} {spawn_rate:10.2f} {'1.0x':>8s} "
        f"{n_batches * repeats + 1:10d}",
        f"  {'server-stream':<18s} {serve_rate:10.2f} "
        f"{f'{serve_rate / spawn_rate:.1f}x':>8s} "
        f"{pool_stats['spawns']:10d}",
        f"  {'inproc':<18s} {inproc_rate:10.2f} "
        f"{f'{vs_spawn:.1f}x':>8s} {0:10d}",
        f"  inproc vs server-stream: {vs_serve:.1f}x",
    ]
    report_table("Inproc (shared library, packed binary cases)",
                 "\n".join(lines))
    report_json(
        "inproc",
        {
            "model": MODEL, "steps": steps, "batch_size": batch,
            "batches": n_batches, "repeats": repeats,
        },
        [
            {"regime": "spawn-per-batch", "cases_per_sec": spawn_rate,
             "processes": n_batches * repeats + 1},
            {"regime": "server-stream", "cases_per_sec": serve_rate,
             "processes": pool_stats["spawns"],
             "reuses": pool_stats["reuses"]},
            {"regime": "inproc", "cases_per_sec": inproc_rate,
             "processes": 0, "speedup_vs_serve": vs_serve,
             "speedup_vs_spawn": vs_spawn},
        ],
        "cases/second",
    )

    assert vs_serve >= _min_speedup(), (
        f"inproc {inproc_rate:.2f} cases/s is only {vs_serve:.2f}x "
        f"server-stream {serve_rate:.2f} cases/s "
        f"(required {_min_speedup():.2f}x)"
    )

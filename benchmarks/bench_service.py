"""Campaign service overhead — what the network front end costs.

The service's contract is that it *wraps* the runner, it doesn't tax
it: a campaign submitted over HTTP and streamed over WebSocket does the
same folds as a direct :func:`repro.campaign.run_campaign` call, plus
framing.  This bench measures both halves of that claim on one
warm-started in-process server:

* **submit-to-first-result latency** — wall time from ``POST
  /campaigns`` returning an id to the first ``case`` event landing on
  the WebSocket.  This is the interactive feel of the service: spec
  validation, admission, thread handoff, one case's simulation, one
  frame.
* **streamed overhead** — end-to-end wall time of a full
  submit→stream→terminal round trip versus the identical campaign run
  directly in-process, best-of-``N`` on both sides.  The service's
  added cost (HTTP parse, event-log append, executor handoff, WS
  framing, loopback TCP) rides on top of real simulation work; the
  asserted bound is that it stays **under 10%** of the direct runtime
  (``ACCMOS_BENCH_SERVICE_MAX_OVERHEAD``, CI may relax on shared
  runners).

Byte-identity of the streamed outcome against the direct run is
asserted along the way — a fast service that streams different bytes
would be measuring the wrong thing.

Knobs: ``ACCMOS_BENCH_SERVICE_STEPS`` (default 5000),
``ACCMOS_BENCH_SERVICE_CASES`` (default 6),
``ACCMOS_BENCH_SERVICE_REPEATS`` (default 2),
``ACCMOS_BENCH_SERVICE_MAX_OVERHEAD`` (default 0.10).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time

from repro.benchmarks import build_benchmark
from repro.campaign import run_campaign
from repro.runner.costmodel import CostModelStore, set_default_cost_store
from repro.schedule import preprocess
from repro.service import CampaignServer, CampaignService, encode, outcome_record
from repro.service.client import ServiceClient

from conftest import report_json, report_table

MODEL = "SPV"


def _steps() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SERVICE_STEPS", "5000"))


def _cases() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SERVICE_CASES", "6"))


def _repeats() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SERVICE_REPEATS", "2"))


def _max_overhead() -> float:
    return float(os.environ.get("ACCMOS_BENCH_SERVICE_MAX_OVERHEAD", "0.10"))


def test_service_overhead(tmp_path):
    previous = set_default_cost_store(CostModelStore(tmp_path / "cm.json"))
    service = CampaignService(
        max_concurrent=1,
        cost_store=CostModelStore(tmp_path / "service-cm.json"),
    )
    server = CampaignServer(service)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    assert started.wait(10)
    client = ServiceClient(server.host, server.port)

    steps, cases, repeats = _steps(), _cases(), _repeats()
    # The campaign must not saturate early: a plateau would make the
    # direct and streamed runs equally short and the ratio noise.
    spec = {
        "model": f"bench:{MODEL}", "engine": "sse", "steps": steps,
        "max_cases": cases, "plateau_patience": cases, "workers": 1,
    }
    prog = preprocess(build_benchmark(MODEL))

    def run_direct():
        return run_campaign(
            prog, engine="sse", steps=steps, max_cases=cases,
            plateau_patience=cases, workers=1,
        )

    def run_streamed():
        """Full round trip; returns (total_s, submit_to_first_case_s,
        terminal_event)."""
        begin = time.perf_counter()
        campaign_id = client.submit(spec)
        submitted = time.perf_counter()
        first_case = None
        final = None
        for event in client.stream(campaign_id):
            if event["type"] == "case" and first_case is None:
                first_case = time.perf_counter() - submitted
            final = event
        total = time.perf_counter() - begin
        assert final is not None and final["type"] == "outcome", final
        return total, first_case, final

    try:
        # Warmup both sides (imports, allocator, cost model)...
        reference = run_direct()
        _, _, warm_final = run_streamed()
        # ...and pin byte-identity before timing anything.
        assert encode(warm_final["outcome"]) == encode(
            outcome_record(reference)
        ), "streamed outcome diverged from the direct run"

        direct_best = min(
            _timed(run_direct) for _ in range(max(1, repeats))
        )
        streamed_samples = [run_streamed() for _ in range(max(1, repeats))]
        streamed_best = min(sample[0] for sample in streamed_samples)
        ttfr_best = min(sample[1] for sample in streamed_samples)
    finally:
        future = asyncio.run_coroutine_threadsafe(server.close(), loop)
        future.result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()
        set_default_cost_store(previous)

    overhead = streamed_best / direct_best - 1.0
    per_case_direct = direct_best / cases
    lines = [
        f"model {MODEL}, sse, {steps} steps/case, {cases} cases, "
        f"best of {repeats}:",
        f"  {'path':<16s} {'total':>9s} {'per case':>9s}",
        f"  {'direct':<16s} {direct_best * 1e3:8.1f}ms "
        f"{per_case_direct * 1e3:8.1f}ms",
        f"  {'service (WS)':<16s} {streamed_best * 1e3:8.1f}ms "
        f"{streamed_best / cases * 1e3:8.1f}ms",
        f"  streamed overhead: {overhead:+.1%} "
        f"(bound {_max_overhead():.0%})",
        f"  submit-to-first-result: {ttfr_best * 1e3:.1f} ms "
        f"(one case is {per_case_direct * 1e3:.1f} ms of it)",
    ]
    report_table("Campaign service overhead", "\n".join(lines))
    report_json(
        "service_overhead",
        {"model": MODEL, "steps": steps, "cases": cases,
         "repeats": repeats},
        [
            {"path": "direct", "seconds": direct_best},
            {"path": "service_ws", "seconds": streamed_best,
             "overhead": overhead},
            {"path": "submit_to_first_result", "seconds": ttfr_best},
        ],
        "seconds (best of repeats)",
    )

    assert overhead < _max_overhead(), (
        f"service round trip {streamed_best:.3f}s is {overhead:+.1%} over "
        f"the direct run {direct_best:.3f}s "
        f"(bound {_max_overhead():.0%})"
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start

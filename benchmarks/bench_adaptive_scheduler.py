"""Streaming work-conserving scheduler vs the wave-barrier loop.

The wave loop submits ``workers x batch`` cases, then blocks on the
slowest one before the next wave starts.  On a cost-skewed corpus —
most cases short, a few 20x longer — every wave containing a long case
parks the whole fleet behind it.  The streaming scheduler keeps a
bounded in-flight window topped up as workers free, folds results
through a seed-ordered reorder buffer, and routes predicted-long cases
to capped dedicated slots, so the short tail never queues behind a
long head.

This bench runs the *same* skewed corpus (one compiled unit — per-case
``steps`` is not structural, so both regimes share one cache entry and
exactly one gcc) through both regimes and asserts:

* per-case results are byte-identical (checksums + coverage bitmaps);
* zero additional compiler invocations after the shared warmup;
* streaming throughput is at least
  ``ACCMOS_BENCH_SCHED_MIN_SPEEDUP`` x the wave loop's (default 1.3;
  skipped when the machine has fewer cores than workers);
* on a saturating campaign, streaming discards strictly fewer
  speculated cases than the wave loop for the same fleet.

Knobs: ``ACCMOS_BENCH_SCHED_CASES`` (default 48),
``ACCMOS_BENCH_SCHED_STEPS`` (default 20000, the short-case cost),
``ACCMOS_BENCH_SCHED_BIG_STEPS`` (default 400000, every
``ACCMOS_BENCH_SCHED_SKEW``-th case, default 12),
``ACCMOS_BENCH_SCHED_WORKERS`` (default 4),
``ACCMOS_BENCH_SCHED_REPEATS`` (default 2, best pass counts), and
``ACCMOS_BENCH_SCHED_MIN_SPEEDUP`` (default 1.3).
"""

from __future__ import annotations

import os
import time

import pytest

from repro import SimulationOptions
from repro.benchmarks import build_benchmark
from repro.campaign import run_campaign
from repro.codegen.driver import find_c_compiler, supports_shared_objects
from repro.runner import ArtifactCache, run_jobs, run_jobs_streaming
from repro.runner.costmodel import CostModelStore
from repro.runner.jobs import SimulationJob
from repro.schedule import preprocess

from conftest import report_json, report_table

MODEL = "SPV"


def _cases() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SCHED_CASES", "48"))


def _steps() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SCHED_STEPS", "20000"))


def _big_steps() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SCHED_BIG_STEPS", "400000"))


def _skew() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SCHED_SKEW", "12"))


def _workers() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SCHED_WORKERS", "4"))


def _repeats() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SCHED_REPEATS", "2"))


def _min_speedup() -> float:
    return float(os.environ.get("ACCMOS_BENCH_SCHED_MIN_SPEEDUP", "1.3"))


def _build_jobs(prog) -> list[SimulationJob]:
    """Cost-skewed corpus: every ``skew``-th case is ~20x longer."""
    jobs = []
    for i in range(_cases()):
        steps = _big_steps() if i % _skew() == 0 else _steps()
        jobs.append(
            SimulationJob(
                prog=prog, seed=1 + i, engine="accmos",
                options=SimulationOptions(steps=steps),
            )
        )
    return jobs


def _assert_identical(reference, candidate) -> None:
    assert [r.seed for r in candidate] == [r.seed for r in reference]
    for ref, got in zip(reference, candidate):
        assert ref.ok and got.ok, (ref.error, got.error)
        assert got.result.checksums == ref.result.checksums
        assert got.result.coverage.bitmaps == ref.result.coverage.bitmaps


def test_streaming_beats_wave_loop_on_skewed_costs(tmp_path):
    if find_c_compiler() is None:
        pytest.skip("no C compiler available")

    prog = preprocess(build_benchmark(MODEL))
    jobs = _build_jobs(prog)
    workers, batch = _workers(), 2
    wave_size = workers * batch
    cache = ArtifactCache(tmp_path / "cache")
    store = CostModelStore(tmp_path / "costmodel.json")
    inproc = supports_shared_objects() is True
    mode_kwargs = dict(
        mode="thread", batch_size=batch, serve=True, inproc=inproc,
        cache=cache,
    )

    def run_wave_loop():
        results = []
        for lo in range(0, len(jobs), wave_size):  # barrier per wave
            results.extend(
                run_jobs(jobs[lo:lo + wave_size], workers=workers,
                         **mode_kwargs)
            )
        return results

    def run_streaming(sink=None):
        return run_jobs_streaming(
            jobs, workers=workers, window=2 * wave_size, adaptive=False,
            cost_store=store, stats_sink=sink, **mode_kwargs,
        )

    # Warmup pays the single gcc and the server/dlopen spin-up; both
    # timed regimes then run from a fully warm cache.
    reference = run_wave_loop()
    assert cache.stats().misses == 1

    def best_rate(run_all):
        best, results = 0.0, None
        for _ in range(max(1, _repeats())):
            start = time.perf_counter()
            out = run_all()
            rate = len(jobs) / (time.perf_counter() - start)
            if rate > best:
                best, results = rate, out
        return best, results

    wave_rate, wave_results = best_rate(run_wave_loop)
    stream_stats: dict = {}
    stream_rate, stream_results = best_rate(
        lambda: run_streaming(stream_stats)
    )

    _assert_identical(reference, wave_results)
    _assert_identical(reference, stream_results)
    # The whole bench — warmup plus every timed pass of both regimes —
    # compiled exactly once.
    assert cache.stats().misses == 1
    assert stream_stats["long_chunks"] >= 1  # skew was seen and routed

    speedup = stream_rate / wave_rate
    cores = os.cpu_count() or 1
    lines = [
        f"model {MODEL}, {len(jobs)} cases ({_steps()} steps, every "
        f"{_skew()}th {_big_steps()}), {workers} workers, "
        f"{cores} core(s), best of {_repeats()}:",
        f"  {'regime':<12s} {'cases/sec':>10s} {'speedup':>8s} "
        f"{'gcc':>5s}",
        f"  {'wave':<12s} {wave_rate:10.2f} {'1.0x':>8s} {0:5d}",
        f"  {'stream':<12s} {stream_rate:10.2f} "
        f"{f'{speedup:.1f}x':>8s} {0:5d}",
    ]
    report_table("Adaptive scheduler (streaming vs wave barrier)",
                 "\n".join(lines))
    report_json(
        "adaptive_scheduler",
        {
            "model": MODEL, "cases": len(jobs), "steps": _steps(),
            "big_steps": _big_steps(), "skew": _skew(),
            "workers": workers, "batch_size": batch,
            "repeats": _repeats(), "cores": cores, "inproc": inproc,
        },
        [
            {"regime": "wave", "cases_per_sec": wave_rate},
            {"regime": "stream", "cases_per_sec": stream_rate,
             "speedup_vs_wave": speedup,
             "max_in_flight": stream_stats.get("max_in_flight"),
             "long_chunks": stream_stats.get("long_chunks")},
        ],
        "cases/second",
    )

    if cores < workers:
        pytest.skip(
            f"{cores} core(s) cannot demonstrate a {workers}-worker "
            f"speedup (identity and one-gcc claims already checked)"
        )
    assert speedup >= _min_speedup(), (
        f"streaming at {stream_rate:.2f} cases/s is only {speedup:.2f}x "
        f"the wave loop's {wave_rate:.2f} cases/s "
        f"(required {_min_speedup():.2f}x)"
    )


def test_streaming_discards_fewer_speculated_cases(tmp_path):
    """At saturation the wave loop throws away up to a wave of completed
    work; the bounded stream window throws away at most the window."""
    if find_c_compiler() is None:
        pytest.skip("no C compiler available")

    prog = preprocess(build_benchmark(MODEL))
    cache = ArtifactCache(tmp_path / "cache")
    kwargs = dict(steps=2000, max_cases=12, plateau_patience=3,
                  cache=cache, serve=False, threads=1)

    wave = run_campaign(prog, workers=2, batch_size=4,
                        scheduler="wave", **kwargs)
    stream = run_campaign(prog, workers=2, batch_size=1, window=2,
                          scheduler="stream", **kwargs)

    assert wave.saturated and stream.saturated
    assert wave.merged.bitmaps == stream.merged.bitmaps
    assert stream.speculated_cases < wave.speculated_cases, (
        f"stream speculated {stream.speculated_cases}, "
        f"wave {wave.speculated_cases}"
    )

"""Coverage-guided vs blind fuzzing at equal case count.

The guided loop's whole claim is coverage efficiency: at the same
evaluation budget it must accumulate strictly more coverage points than
the blind campaign, because (a) insertion mutations grow corpus models
past the blind generator's size ceiling (more points per case) and
(b) the energy scheduler re-spends budget on structures whose point
space is not yet exhausted instead of redrawing from scratch.

Both arms run the same differential oracle on the same rung and the
same accounting — a fresh :class:`~repro.guided.covmap.CoverageMap`
each — so the only difference measured is *which cases* each strategy
chose to evaluate.

Asserted claim: on the fixed seed, guided accumulates strictly more
points than blind at equal case count (the ISSUE's acceptance bar).

Knobs: ``ACCMOS_BENCH_GUIDED_CASES`` (default 300; CI smoke uses less),
``ACCMOS_BENCH_GUIDED_SEED`` (default 0).
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from repro.fuzz.driver import case_seed
from repro.fuzz.generate import generate_case
from repro.fuzz.oracle import run_case
from repro.guided import (
    CoverageMap,
    GuidedConfig,
    coverage_key,
    default_guided_rungs,
    run_guided,
)

from conftest import report_json, report_table


def _cases() -> int:
    return int(os.environ.get("ACCMOS_BENCH_GUIDED_CASES", "300"))


def _seed() -> int:
    return int(os.environ.get("ACCMOS_BENCH_GUIDED_SEED", "0"))


def _run_blind(cases: int, seed: int, rungs) -> tuple[int, int, float]:
    """The blind baseline: independent draws, same oracle, same
    accounting.  Returns (points, structures, seconds)."""
    accumulated = CoverageMap()
    started = time.perf_counter()
    for index in range(cases):
        case = generate_case(case_seed(seed, index), max_actors=14)
        try:
            report = run_case(
                case, rungs=rungs, timeout_seconds=60.0, cache=None
            )
        except Exception:  # noqa: BLE001 — bad draw: skip, like guided does
            continue
        if report.coverage is not None:
            bitmaps = report.coverage.bitmaps
            accumulated.observe(coverage_key(case, bitmaps), bitmaps)
    return (
        accumulated.points(),
        accumulated.n_keys,
        time.perf_counter() - started,
    )


def test_guided_beats_blind_at_equal_cases():
    cases, seed = _cases(), _seed()
    rungs = default_guided_rungs()

    blind_points, blind_keys, blind_seconds = _run_blind(cases, seed, rungs)

    with tempfile.TemporaryDirectory() as tmp:
        outcome = run_guided(GuidedConfig(
            cases=cases,
            seed=seed,
            rungs=rungs,
            corpus_dir=Path(tmp) / "corpus",
            shrink=False,  # measure search efficiency, not shrink cost
            timeout_seconds=60.0,
        ))

    guided_points = outcome.coverage_points
    per100 = lambda points, n: 100.0 * points / max(1, n)  # noqa: E731
    rows = [
        {
            "strategy": "blind",
            "cases": cases,
            "points": blind_points,
            "structures": blind_keys,
            "points_per_100_cases": round(per100(blind_points, cases), 1),
            "seconds": round(blind_seconds, 2),
        },
        {
            "strategy": "guided",
            "cases": outcome.cases_run,
            "points": guided_points,
            "structures": outcome.coverage_keys,
            "points_per_100_cases": round(
                per100(guided_points, outcome.cases_run), 1
            ),
            "seconds": round(outcome.elapsed, 2),
        },
    ]
    lines = [
        f"rung {rungs[0]}, seed {seed}, {cases} case budget",
        f"{'strategy':8s} {'cases':>6s} {'points':>8s} {'structs':>8s} "
        f"{'pts/100':>8s} {'seconds':>8s}",
    ]
    for r in rows:
        lines.append(
            f"{r['strategy']:8s} {r['cases']:6d} {r['points']:8d} "
            f"{r['structures']:8d} {r['points_per_100_cases']:8.1f} "
            f"{r['seconds']:8.2f}"
        )
    gain = guided_points / max(1, blind_points)
    lines.append(f"guided/blind coverage ratio: {gain:.2f}x")
    text = "\n".join(lines)
    report_table("Guided vs blind fuzzing coverage", text)
    report_json(
        "bench_guided",
        {"cases": cases, "seed": seed, "rungs": list(rungs)},
        rows,
        unit="accumulated coverage points",
    )

    assert guided_points > blind_points, (
        f"guided must accumulate strictly more coverage than blind at "
        f"{cases} cases: guided {guided_points} vs blind {blind_points}"
    )

"""Warm-server streaming vs spawn-per-batch — the persistent-server payoff.

With compile-once/run-many, the remaining fixed cost of a batch is the
process spawn: fork + exec + libc start-up + pipe teardown, paid once per
batch.  Server mode amortizes even that — one ``--serve`` process per
compiled artifact stays warm across batches, cases stream through its
stdin, and frames are parsed incrementally as each case's ``done``
trailer lands.  This bench measures the two regimes on a spawn-bound
small-step workload (short cases, small batches — the shape where the
spawn is a large share of the wall clock):

* ``spawn-per-batch`` — ``CompiledModel.run_batch``: one fresh process
  per batch of cases;
* ``server-stream``   — ``ServerPool.run_batch``: the same batches
  streamed through one warm server reused across all of them.

It also measures **time-to-first-result**: streaming yields case 0 the
moment its frame completes, while the batch path blocks on the whole
batch's ``communicate()``.

Asserted claims: the server-stream regime does **exactly one** process
spawn for the entire run (zero restarts), its results are byte-identical
to the spawn path, and its throughput is at least 1.5x spawn-per-batch.

Each regime is timed ``ACCMOS_BENCH_SERVER_REPEATS`` times (default 3)
and the best pass counts — scheduler noise only ever slows a run down,
so the minimum wall clock is the honest estimate of each regime's cost.

Knobs: ``ACCMOS_BENCH_SERVER_BATCHES`` (default 40),
``ACCMOS_BENCH_SERVER_BATCH`` (default 2), ``ACCMOS_BENCH_SERVER_STEPS``
(default 32), ``ACCMOS_BENCH_SERVER_TTFR_CASES`` (default 16),
``ACCMOS_BENCH_SERVER_REPEATS`` (default 3), and
``ACCMOS_BENCH_SERVER_MIN_SPEEDUP`` (default 1.5; CI smoke relaxes it —
shared runners make tight perf ratios flaky).
"""

from __future__ import annotations

import os
import time

from repro import SimulationOptions
from repro.benchmarks import build_benchmark
from repro.engines.accmos import compile_model
from repro.runner.servers import ServerPool
from repro.schedule import preprocess
from repro.stimuli import default_stimuli

from conftest import report_json, report_table
from helpers import assert_results_agree

MODEL = "SPV"


def _n_batches() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SERVER_BATCHES", "40"))


def _batch() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SERVER_BATCH", "2"))


def _steps() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SERVER_STEPS", "32"))


def _ttfr_cases() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SERVER_TTFR_CASES", "16"))


def _repeats() -> int:
    return int(os.environ.get("ACCMOS_BENCH_SERVER_REPEATS", "3"))


def _min_speedup() -> float:
    return float(os.environ.get("ACCMOS_BENCH_SERVER_MIN_SPEEDUP", "1.5"))


def test_server_mode_throughput():
    prog = preprocess(build_benchmark(MODEL))
    steps, batch, n_batches = _steps(), _batch(), _n_batches()
    options = SimulationOptions(steps=steps)
    model = compile_model(prog, options)

    batches = [
        [
            (default_stimuli(prog, seed=1 + b * batch + i), options)
            for i in range(batch)
        ]
        for b in range(n_batches)
    ]
    n_cases = batch * n_batches

    repeats = _repeats()

    def best_rate(run_all) -> float:
        return max(
            n_cases / _timed(run_all) for _ in range(max(1, repeats))
        )

    def _timed(run_all) -> float:
        start = time.perf_counter()
        run_all()
        return time.perf_counter() - start

    # Spawn-per-batch regime: one fresh process per batch.  The first
    # batch is an untimed warmup (page cache, allocator) for both sides.
    spawn_ref = model.run_batch(batches[0])
    spawn_rate = best_rate(
        lambda: [model.run_batch(cases) for cases in batches]
    )

    # Server-stream regime: every batch rides the same warm server.
    # The warmup batch pays the single spawn, so the timed window is
    # pure steady state — exactly what a long campaign sees.
    pool = ServerPool(max_servers=2)
    try:
        serve_ref = pool.run_batch(model, batches[0])
        serve_rate = best_rate(
            lambda: [pool.run_batch(model, cases) for cases in batches]
        )
        stats = pool.stats()
    finally:
        pool.close()

    # Byte-identity between the regimes (spot-checked on one batch).
    for spawn_result, serve_result in zip(spawn_ref, serve_ref):
        assert_results_agree(spawn_result, serve_result)

    # One artifact, one spawn — the whole run reused a single warm
    # process and never restarted it.
    assert stats["spawns"] == 1, stats
    assert stats["restarts"] == 0, stats
    assert stats["reuses"] == n_batches * repeats, stats

    # Time-to-first-result: the stream yields case 0 as soon as its
    # frame lands; the batch path blocks on the whole batch.
    ttfr_batch = [
        (default_stimuli(prog, seed=10_001 + i), options)
        for i in range(_ttfr_cases())
    ]
    server = model.serve()
    try:
        stream = model.run_stream(ttfr_batch, server=server)
        start = time.perf_counter()
        first = next(stream)
        ttfr_stream = time.perf_counter() - start
        list(stream)  # drain the remaining frames before closing
    finally:
        server.close()
    start = time.perf_counter()
    full = model.run_batch(ttfr_batch)
    ttfr_spawn = time.perf_counter() - start
    assert_results_agree(full[0], first)

    speedup = serve_rate / spawn_rate
    lines = [
        f"model {MODEL}, {steps} steps/case, {n_batches} batches x "
        f"{batch} cases ({n_cases} cases), best of {repeats}:",
        f"  {'regime':<18s} {'cases/sec':>10s} {'speedup':>8s} "
        f"{'spawns':>7s}",
        f"  {'spawn-per-batch':<18s} {spawn_rate:10.2f} {'1.0x':>8s} "
        f"{n_batches * repeats + 1:7d}",
        f"  {'server-stream':<18s} {serve_rate:10.2f} "
        f"{f'{speedup:.1f}x':>8s} {stats['spawns']:7d}",
        f"  time to first result ({len(ttfr_batch)}-case batch): "
        f"stream {ttfr_stream * 1e3:.2f} ms vs full batch "
        f"{ttfr_spawn * 1e3:.2f} ms",
    ]
    report_table("Server mode (warm process, streamed cases)",
                 "\n".join(lines))
    report_json(
        "server_mode",
        {
            "model": MODEL, "steps": steps, "batch_size": batch,
            "batches": n_batches, "repeats": repeats,
            "ttfr_cases": len(ttfr_batch),
        },
        [
            {"regime": "spawn-per-batch", "cases_per_sec": spawn_rate,
             "spawns": n_batches * repeats + 1},
            {"regime": "server-stream", "cases_per_sec": serve_rate,
             "spawns": stats["spawns"], "reuses": stats["reuses"],
             "restarts": stats["restarts"]},
            {"regime": "time-to-first-result",
             "stream_seconds": ttfr_stream, "batch_seconds": ttfr_spawn},
        ],
        "cases/second",
    )

    assert speedup >= _min_speedup(), (
        f"server-stream {serve_rate:.2f} cases/s is only {speedup:.2f}x "
        f"spawn-per-batch {spawn_rate:.2f} cases/s "
        f"(required {_min_speedup():.2f}x)"
    )

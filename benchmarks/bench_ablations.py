"""Ablations — where AccMoS's speed comes from and what instrumentation
costs.

Not tables from the paper, but the design-choice checks DESIGN.md calls
out:

* instrumentation overhead: AccMoS with full coverage+diagnosis vs the
  bare generated loop (the paper's §2 notes Simulink's fast modes *drop*
  these features for speed — AccMoS keeps them; how much do they cost?);
* compiler optimization: -O0 vs -O3 on the generated code (the paper's
  Table-2 analysis credits compiler optimization for the biggest wins on
  computation-heavy models);
* interpretation overhead decomposition: SSE -> SSE_ac (dispatch
  precompiled) -> SSE_rac (whole-model generated Python) -> AccMoS
  (generated C).
"""

from __future__ import annotations

import pytest

from repro import SimulationOptions, simulate
from repro.benchmarks import benchmark_stimuli
from repro.codegen import generate_c_program
from repro.codegen.driver import CFLAGS, compile_c_program, parse_result
from repro.instrument import build_plan

from conftest import bench_steps, report_json, report_table

MODEL = "LANS"  # computation-heavy: the interesting case for both ablations


@pytest.fixture(scope="module")
def lans(programs):
    if MODEL not in programs:
        pytest.skip(f"{MODEL} excluded by ACCMOS_BENCH_MODELS")
    return programs[MODEL]


def _run_accmos_variant(prog, *, coverage, diagnostics, flags=None, steps=None):
    import subprocess
    import time

    steps = steps or max(bench_steps() * 20, 200_000)
    options = SimulationOptions(
        steps=steps, coverage=coverage, diagnostics=diagnostics,
    )
    plan = build_plan(prog, coverage=coverage, diagnostics=diagnostics)
    source, layout = generate_c_program(
        prog, plan, benchmark_stimuli(prog), options
    )
    if flags is None:
        compiled = compile_c_program(source, layout)
    else:
        import repro.codegen.driver as driver

        original = list(driver.CFLAGS)
        driver.CFLAGS[:] = flags
        try:
            compiled = compile_c_program(source, layout)
        finally:
            driver.CFLAGS[:] = original
    result = parse_result(compiled.execute(), prog, plan, layout, options)
    return result


def test_instrumentation_overhead(benchmark, lans):
    full = benchmark.pedantic(
        lambda: _run_accmos_variant(lans, coverage=True, diagnostics=True),
        rounds=1, iterations=1,
    )
    no_cov = _run_accmos_variant(lans, coverage=False, diagnostics=True)
    bare = _run_accmos_variant(lans, coverage=False, diagnostics=False)

    assert full.checksums == bare.checksums  # instrumentation is observational
    overhead = full.wall_time / max(bare.wall_time, 1e-9)
    rows = [
        f"model {MODEL}, {full.steps_run:,} steps",
        f"{'variant':32s} {'wall time':>12s} {'relative':>9s}",
        f"{'coverage + diagnosis (AccMoS)':32s} {full.wall_time:11.4f}s "
        f"{full.wall_time / bare.wall_time:8.2f}x",
        f"{'diagnosis only':32s} {no_cov.wall_time:11.4f}s "
        f"{no_cov.wall_time / bare.wall_time:8.2f}x",
        f"{'bare generated loop':32s} {bare.wall_time:11.4f}s {1.0:8.2f}x",
        "(Simulink's fast modes drop these features entirely; AccMoS keeps",
        " them at this cost and still beats the interpreted engine by 100x+)",
    ]
    report_table("Ablation: instrumentation overhead", "\n".join(rows))
    report_json(
        "ablation_instrumentation",
        {"model": MODEL, "steps": full.steps_run},
        [
            {"variant": "coverage+diagnosis", "wall_time": full.wall_time},
            {"variant": "diagnosis_only", "wall_time": no_cov.wall_time},
            {"variant": "bare", "wall_time": bare.wall_time},
        ],
        "seconds",
    )
    assert overhead < 50, "instrumentation must not devour the codegen win"


def test_compiler_optimization_ablation(benchmark, lans):
    o3 = benchmark.pedantic(
        lambda: _run_accmos_variant(
            lans, coverage=True, diagnostics=True,
            flags=["-O3", "-ffp-contract=off", "-std=c11"],
        ),
        rounds=1, iterations=1,
    )
    o0 = _run_accmos_variant(
        lans, coverage=True, diagnostics=True,
        flags=["-O0", "-ffp-contract=off", "-std=c11"],
    )
    assert o0.checksums == o3.checksums
    speedup = o0.wall_time / max(o3.wall_time, 1e-9)
    rows = [
        f"model {MODEL}, {o3.steps_run:,} steps",
        f"-O0: {o0.wall_time:.4f}s   -O3: {o3.wall_time:.4f}s   "
        f"optimization gain: {speedup:.1f}x",
        "(the paper attributes the biggest Table-2 ratios to compiler",
        " optimization of computational actor chains)",
    ]
    report_table("Ablation: compiler optimization (-O0 vs -O3)", "\n".join(rows))
    report_json(
        "ablation_compiler_opt",
        {"model": MODEL, "steps": o3.steps_run},
        [
            {"flags": "-O0", "wall_time": o0.wall_time},
            {"flags": "-O3", "wall_time": o3.wall_time},
        ],
        "seconds",
    )
    assert speedup > 1.2


def test_interpretation_overhead_decomposition(benchmark, lans):
    steps = bench_steps() // 2
    times = {}

    def sweep():
        for engine in ("sse", "sse_ac", "sse_rac", "accmos"):
            result = simulate(
                lans, benchmark_stimuli(lans), engine=engine,
                options=SimulationOptions(steps=steps),
            )
            times[engine] = result.wall_time

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        f"model {MODEL}, {steps:,} steps",
        f"{'stage':44s} {'wall time':>12s}",
        f"{'interpreted, full instrumentation (SSE)':44s} {times['sse']:11.4f}s",
        f"{'precompiled dispatch, per-step sync (ac)':44s} {times['sse_ac']:11.4f}s",
        f"{'generated Python, batched sync (rac)':44s} {times['sse_rac']:11.4f}s",
        f"{'generated C -O3, instrumented (AccMoS)':44s} {times['accmos']:11.4f}s",
    ]
    report_table("Ablation: interpretation overhead decomposition",
                 "\n".join(rows))
    report_json(
        "ablation_interpretation",
        {"model": MODEL, "steps": steps},
        [{"engine": e, "wall_time": t} for e, t in times.items()],
        "seconds",
    )
    assert times["sse"] > times["sse_ac"] > times["sse_rac"] > times["accmos"]

"""Table 1 — the benchmark model inventory.

Regenerates the paper's model description table from the actual built
models (functionality, #Actor, #SubSystem) and benchmarks model
construction + preprocessing throughput.
"""

from __future__ import annotations

import pytest

from repro.benchmarks import TABLE1, build_benchmark
from repro.schedule import preprocess

from conftest import bench_models, report_json, report_table


def test_table1_inventory(benchmark, programs):
    rows = [f"{'Model':6s} {'Functionality':42s} {'#Actor':>7s} {'#SubSystem':>11s}"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in bench_models():
        model = build_benchmark(name)
        desc, n_actors, n_subsystems = TABLE1[name]
        assert model.n_actors == n_actors, name
        assert model.n_subsystems == n_subsystems, name
        rows.append(f"{name:6s} {desc:42s} {model.n_actors:7d} "
                    f"{model.n_subsystems:11d}")
    report_table("Table 1: benchmark model descriptions", "\n".join(rows))
    report_json(
        "table1_models",
        {"models": bench_models()},
        [
            {
                "model": name,
                "actors": TABLE1[name][1],
                "subsystems": TABLE1[name][2],
            }
            for name in bench_models()
        ],
        "count",
    )


@pytest.mark.parametrize("name", sorted(TABLE1))
def test_build_and_preprocess_throughput(benchmark, name):
    """How fast a Table-1 model builds and schedules (not in the paper,
    but the preprocessing step's cost matters for AccMoS's end-to-end
    turnaround)."""
    benchmark(lambda: preprocess(build_benchmark(name)))

"""Thread-parallel in-process execution vs the sequential inproc rung.

The in-process rung already removed spawns, pipes, and text; what
remains is that one Python thread drives one C simulation loop at a
time.  ``ctypes`` releases the GIL around ``acc_lib_run_case``, so N
worker threads holding N private library instances run N C loops on N
cores — the thread-parallel rung multiplies the inproc rung by the core
count with **zero** additional processes.  This bench measures a
compute-bound workload (long cases, the shape where the C loop dominates
per-case freight) in two regimes:

* ``inproc-1t`` — ``CompiledModel.run_inproc(cases)``: the sequential
  in-process rung;
* ``inproc-Nt`` — ``CompiledModel.run_inproc(cases, threads=N)``: the
  same cases sharded across N pooled instances.

Asserted claims: the threaded regime's results are byte-identical to the
sequential rung's, it spawns **zero** simulation processes (enforced by
poisoning the spawn paths for the whole bench), and — on machines with
at least ``N`` cores — its throughput is at least
``ACCMOS_BENCH_INPROC_MT_MIN_SPEEDUP`` times the sequential rung's
(default 2.0 at 4 threads; CI smoke relaxes it to 1.5 — shared runners
make tight perf ratios flaky).  On smaller machines the identity and
zero-spawn claims still run; only the speedup assertion is skipped.

Each regime is timed ``ACCMOS_BENCH_INPROC_MT_REPEATS`` times (default
3) and the best pass counts — scheduler noise only ever slows a run
down.

Knobs: ``ACCMOS_BENCH_INPROC_MT_CASES`` (default 16),
``ACCMOS_BENCH_INPROC_MT_STEPS`` (default 20000),
``ACCMOS_BENCH_INPROC_MT_THREADS`` (default 4),
``ACCMOS_BENCH_INPROC_MT_REPEATS`` (default 3), and
``ACCMOS_BENCH_INPROC_MT_MIN_SPEEDUP`` (default 2.0).
"""

from __future__ import annotations

import os
import time

import pytest

from repro import SimulationOptions
from repro.benchmarks import build_benchmark
from repro.codegen import driver as driver_mod
from repro.codegen.driver import supports_shared_objects
from repro.engines.accmos import compile_model
from repro.schedule import preprocess
from repro.stimuli import default_stimuli

from conftest import report_json, report_table
from helpers import assert_results_agree

MODEL = "SPV"


def _cases() -> int:
    return int(os.environ.get("ACCMOS_BENCH_INPROC_MT_CASES", "16"))


def _steps() -> int:
    return int(os.environ.get("ACCMOS_BENCH_INPROC_MT_STEPS", "20000"))


def _threads() -> int:
    return int(os.environ.get("ACCMOS_BENCH_INPROC_MT_THREADS", "4"))


def _repeats() -> int:
    return int(os.environ.get("ACCMOS_BENCH_INPROC_MT_REPEATS", "3"))


def _min_speedup() -> float:
    return float(
        os.environ.get("ACCMOS_BENCH_INPROC_MT_MIN_SPEEDUP", "2.0")
    )


def test_inproc_threads_throughput(monkeypatch):
    if supports_shared_objects() is not True:
        pytest.skip("toolchain cannot build loadable shared objects")

    prog = preprocess(build_benchmark(MODEL))
    n_cases, steps, threads = _cases(), _steps(), _threads()
    options = SimulationOptions(steps=steps)
    model = compile_model(prog, options, artifact="shared")

    # Poison every process-spawning path: the whole bench must stay
    # in-process or fail loudly.
    def no_spawn(*args, **kwargs):
        raise AssertionError("simulation process spawned on the inproc path")

    monkeypatch.setattr(driver_mod.CompiledSimulation, "execute", no_spawn)
    monkeypatch.setattr(driver_mod.SimulationServer, "__init__", no_spawn)

    cases = [
        (default_stimuli(prog, seed=1 + i), options) for i in range(n_cases)
    ]
    repeats = _repeats()

    def best_rate(run_all) -> float:
        best = 0.0
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            run_all()
            best = max(best, n_cases / (time.perf_counter() - start))
        return best

    # Warmups pay the dlopen(s) so the timed windows are steady state.
    sequential_ref = model.run_inproc(cases)
    threaded_ref = model.run_inproc(cases, threads=threads)

    sequential_rate = best_rate(lambda: model.run_inproc(cases))
    threaded_rate = best_rate(
        lambda: model.run_inproc(cases, threads=threads)
    )

    # Byte-identity between the regimes, and no fallback ever engaged.
    for seq_result, par_result in zip(sequential_ref, threaded_ref):
        assert_results_agree(seq_result, par_result)
    assert model.inproc_available

    speedup = threaded_rate / sequential_rate
    cores = os.cpu_count() or 1
    lines = [
        f"model {MODEL}, {steps} steps/case, {n_cases} cases, "
        f"{cores} core(s), best of {repeats}:",
        f"  {'regime':<12s} {'cases/sec':>10s} {'speedup':>8s} "
        f"{'processes':>10s}",
        f"  {'inproc-1t':<12s} {sequential_rate:10.2f} {'1.0x':>8s} "
        f"{0:10d}",
        f"  {f'inproc-{threads}t':<12s} {threaded_rate:10.2f} "
        f"{f'{speedup:.1f}x':>8s} {0:10d}",
    ]
    report_table("Inproc threads (parallel C loops, zero spawns)",
                 "\n".join(lines))
    report_json(
        "inproc_threads",
        {
            "model": MODEL, "steps": steps, "cases": n_cases,
            "threads": threads, "repeats": repeats, "cores": cores,
        },
        [
            {"regime": "inproc-1t", "cases_per_sec": sequential_rate,
             "processes": 0},
            {"regime": f"inproc-{threads}t", "cases_per_sec": threaded_rate,
             "processes": 0, "speedup_vs_sequential": speedup},
        ],
        "cases/second",
    )

    if cores < threads:
        pytest.skip(
            f"{cores} core(s) cannot demonstrate a {threads}-thread "
            f"speedup (identity and zero-spawn claims already checked)"
        )
    assert speedup >= _min_speedup(), (
        f"threads={threads} at {threaded_rate:.2f} cases/s is only "
        f"{speedup:.2f}x sequential {sequential_rate:.2f} cases/s "
        f"(required {_min_speedup():.2f}x)"
    )

"""Continuous models via Adams-Bashforth solvers (the paper's §5 future
work, implemented).

Simulates a damped spring-mass system

    x'' = -k/m * x - c/m * x'

as two coupled ContinuousIntegrator blocks in a feedback loop, compares
the generated-C result against the analytic solution, and shows the
solver-order accuracy ladder (euler < ab2/ab3).

Run:  python examples/continuous_ode.py
"""

import math

from repro import ModelBuilder, simulate
from repro.dtypes import F64
from repro.schedule import preprocess

K_OVER_M = 4.0   # omega^2
C_OVER_M = 0.4   # damping


def build_spring(solver: str):
    b = ModelBuilder("Spring")
    tick = b.inport("Tick", dtype=F64)  # unused clock input

    # x' = v ; v' = -(k/m) x - (c/m) v
    x = b.block("ContinuousIntegrator", "X", [("V", 0)],
                params={"solver": solver, "initial": 1.0}, out_dtype=F64)
    spring = b.gain("Spring", x, -K_OVER_M)
    damper = b.gain("Damper", ("V", 0), -C_OVER_M)
    accel = b.add("Accel", spring, damper)
    b.block("ContinuousIntegrator", "V", [accel],
            params={"solver": solver, "initial": 0.0}, out_dtype=F64)

    b.terminator("T", tick)
    b.outport("Position", x)
    b.outport("Velocity", ("V", 0))
    return b.build()


def exact_position(t: float) -> float:
    """Analytic solution for x(0)=1, v(0)=0 (underdamped)."""
    zeta = C_OVER_M / (2.0 * math.sqrt(K_OVER_M))
    omega0 = math.sqrt(K_OVER_M)
    omega_d = omega0 * math.sqrt(1 - zeta**2)
    envelope = math.exp(-zeta * omega0 * t)
    return envelope * (
        math.cos(omega_d * t)
        + (zeta * omega0 / omega_d) * math.sin(omega_d * t)
    )


def main():
    dt = 0.001
    t_end = 5.0
    steps = int(t_end / dt) + 1
    t_sampled = (steps - 1) * dt
    reference = exact_position(t_sampled)

    print(f"damped spring-mass, dt={dt}, t={t_sampled:.3f}s "
          f"(exact x = {reference:+.6f})\n")
    print(f"{'solver':8s} {'x(t)':>12s} {'abs error':>12s} {'wall time':>10s}")
    from repro.stimuli import ConstantStimulus

    for solver in ("euler", "ab2", "ab3"):
        prog = preprocess(build_spring(solver), dt=dt)
        result = simulate(prog, {"Tick": ConstantStimulus(0.0)},
                          engine="accmos", steps=steps)
        x = result.outputs["Position"]
        print(f"{solver:8s} {x:12.6f} {abs(x - reference):12.2e} "
              f"{result.wall_time:9.4f}s")

    print("\nhigher-order Adams methods track the analytic solution far")
    print("more closely at the same step size — and all of it runs as")
    print("generated C, identical to the interpreted reference engine.")


if __name__ == "__main__":
    main()

"""The paper's Figure-1 scenario: finding a long-run integer overflow.

The motivating model accumulates two inputs and sums the accumulators;
with positive inputs the int32 sum wraps after enough steps.  Simulink's
interpreted engine needs minutes of simulation to reach the wrap — AccMoS
compiles the model and reaches the same step (and the same diagnostic) in
milliseconds.

Run:  python examples/overflow_detection.py
"""

from repro import DiagnosticKind, SimulationOptions, simulate
from repro.benchmarks.motivating import build_motivating_model, motivating_stimuli
from repro.schedule import preprocess


def main():
    model = build_motivating_model()
    prog = preprocess(model)
    options = SimulationOptions(
        steps=2_000_000,
        halt_on=frozenset({DiagnosticKind.WRAP_ON_OVERFLOW}),
    )

    print("Figure-1 motivating model (accumulate two inputs, sum them).")
    print("Simulating until the first wrap-on-overflow diagnostic...\n")

    detections = {}
    for engine in ("sse", "accmos"):
        result = simulate(prog, motivating_stimuli(), engine=engine, options=options)
        detections[engine] = result
        event = result.diagnostic("Motivate_Sum", DiagnosticKind.WRAP_ON_OVERFLOW)
        print(f"{engine:8s} wall time {result.wall_time:8.3f}s  "
              f"detected at step {result.halted_at}  ({event})")

    sse, acc = detections["sse"], detections["accmos"]
    assert sse.halted_at == acc.halted_at, "both engines find the same step"
    speedup = sse.wall_time / max(acc.wall_time, 1e-9)
    print(f"\nsame error, same step — {speedup:.0f}x faster with AccMoS")
    print("(the paper reports 184.74s vs 0.37s for this scenario, ~500x)")


if __name__ == "__main__":
    main()

"""Quickstart: build a small model, simulate it with every engine.

Builds a two-channel sensor-fusion model with the programmatic builder,
runs the interpreted reference engine (SSE) and AccMoS's generated-C
engine, and shows that they agree exactly while AccMoS runs orders of
magnitude faster.

Run:  python examples/quickstart.py
"""

from repro import ModelBuilder, simulate
from repro.dtypes import F64, I32
from repro.schedule import preprocess
from repro.stimuli import IntRandomStimulus, UniformRandomStimulus


def build_model():
    b = ModelBuilder("Fusion")

    # Two sensor channels and a mode selector.
    raw_a = b.inport("SensorA", dtype=F64)
    raw_b = b.inport("SensorB", dtype=F64)
    mode = b.inport("Mode", dtype=I32)

    # Channel conditioning: scale, low-pass, clamp.
    chan_a = b.block("DiscreteFilter", "SmoothA",
                     [b.gain("ScaleA", raw_a, 100.0)],
                     params={"b0": 0.2, "a1": 0.8})
    chan_b = b.block("DiscreteFilter", "SmoothB",
                     [b.gain("ScaleB", raw_b, 100.0)],
                     params={"b0": 0.2, "a1": 0.8})

    # Fuse: pick A, B, or their mean, by mode.
    mean = b.gain("Half", b.add("SumAB", chan_a, chan_b), 0.5)
    mode_idx = b.block("Mod", "ModeIdx",
                       [b.abs_("ModeAbs", mode), b.constant("Three", 3)])
    fused = b.multiport_switch("Fused", mode_idx, [chan_a, chan_b, mean])

    # Alarm when the fused value leaves its envelope.
    high = b.relational("High", ">", fused, b.constant("Hi", 75.0))
    low = b.relational("Low", "<", fused, b.constant("Lo", 5.0))
    alarm = b.logic("Alarm", "OR", [high, low])

    b.outport("Value", fused)
    b.outport("AlarmOut", alarm)
    return b.build()


def main():
    model = build_model()
    print(f"built {model.name}: {model.n_actors} actors")

    prog = preprocess(model)

    def stimuli():
        return {
            "SensorA": UniformRandomStimulus(seed=1, lo=0.0, hi=1.0),
            "SensorB": UniformRandomStimulus(seed=2, lo=0.0, hi=1.0),
            "Mode": IntRandomStimulus(seed=3, lo=0, hi=5),
        }

    results = {}
    for engine in ("sse", "accmos"):
        results[engine] = simulate(prog, stimuli(), engine=engine, steps=100_000)
        r = results[engine]
        print(f"{engine:8s} {r.wall_time:8.3f}s  "
              f"Value={r.outputs['Value']:.6f}  coverage: {r.coverage.summary()}")

    sse, acc = results["sse"], results["accmos"]
    assert sse.checksums == acc.checksums, "engines must agree bit for bit"
    assert sse.coverage.bitmaps == acc.coverage.bitmaps
    print(f"\nengines agree on every step; AccMoS speedup: "
          f"{sse.wall_time / max(acc.wall_time, 1e-9):.0f}x")


if __name__ == "__main__":
    main()

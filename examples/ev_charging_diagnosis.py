"""The §4 case study: diagnosing injected errors in the CSEV model.

CSEV models an electric-vehicle charging system with a ``quantity`` data
store recording charged energy.  Two wrap-on-overflow errors are injected
(as in the paper):

* error 1 — the quantity accumulator loses its clamp and wraps after a
  long charging simulation;
* error 2 — the charging-power product's output type is short int, which
  wraps immediately in high-power modes (and is also flagged statically as
  a downcast).

A custom signal diagnosis (paper §3.2.B) additionally watches the power
product for implausible values.

Run:  python examples/ev_charging_diagnosis.py
"""

from repro import DiagnosticKind, SimulationOptions, simulate
from repro.benchmarks import benchmark_stimuli
from repro.benchmarks.inject import (
    POWER_PRODUCT_PATH,
    QUANTITY_ADD_PATH,
    build_csev_healthy,
    build_csev_with_power_downcast,
    build_csev_with_quantity_overflow,
)
from repro.diagnosis.custom import output_outside
from repro.schedule import preprocess


def detect(model, path, *, steps=500_000, engines=("sse", "accmos")):
    prog = preprocess(model)
    options = SimulationOptions(
        steps=steps, halt_on=frozenset({DiagnosticKind.WRAP_ON_OVERFLOW})
    )
    rows = {}
    for engine in engines:
        result = simulate(prog, benchmark_stimuli(prog), engine=engine, options=options)
        rows[engine] = result
        found = result.diagnostic(path, DiagnosticKind.WRAP_ON_OVERFLOW)
        status = f"detected at step {result.halted_at}" if found else "not detected"
        print(f"  {engine:8s} {result.wall_time:8.3f}s  {status}")
    return rows


def main():
    print("=== healthy CSEV (no injected errors) ===")
    healthy = preprocess(build_csev_healthy())
    result = simulate(healthy, benchmark_stimuli(healthy), engine="accmos", steps=200_000)
    wraps = [e for e in result.diagnostics
             if e.kind is DiagnosticKind.WRAP_ON_OVERFLOW]
    print(f"  wrap diagnostics: {len(wraps)} (the widen-clamp-narrow guard holds)")

    print("\n=== error 1: quantity accumulator overflow (slow to manifest) ===")
    rows = detect(build_csev_with_quantity_overflow(), QUANTITY_ADD_PATH)
    sse, acc = rows["sse"], rows["accmos"]
    print(f"  -> same step ({sse.halted_at}), "
          f"{sse.wall_time / max(acc.wall_time, 1e-9):.0f}x faster detection")
    print("  (paper: 450.14s with SSE vs 0.74s with AccMoS)")

    print("\n=== error 2: power product downcast (manifests immediately) ===")
    rows = detect(build_csev_with_power_downcast(), POWER_PRODUCT_PATH, steps=20_000)
    print("  (paper: both engines detect it within 0.18..1.2s)")

    print("\n=== custom signal diagnosis on the power product ===")
    # Physical charging power is never negative; a negative product output
    # is the wrapped short int showing through.
    injected = preprocess(build_csev_with_power_downcast())
    watch = output_outside(POWER_PRODUCT_PATH, 0, 32767)
    options = SimulationOptions(steps=5_000, custom=(watch,))
    result = simulate(injected, benchmark_stimuli(injected), engine="accmos",
                      options=options)
    custom = result.diagnostic(POWER_PRODUCT_PATH, DiagnosticKind.CUSTOM)
    print(f"  custom callback fired: {custom}")


if __name__ == "__main__":
    main()

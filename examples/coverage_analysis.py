"""Coverage within equal wall-clock budgets (the Table-3 experiment).

Runs the same random test cases against one benchmark model with the
interpreted SSE engine and with AccMoS, each under identical wall-clock
budgets, and reports all four Simulink coverage metrics.  Because AccMoS
executes orders of magnitude more steps per second, it reaches the rare
conditions (late-enabled subsystems, deep branches) the slow engine never
gets to within the budget.

Run:  python examples/coverage_analysis.py [MODEL] [BUDGETS...]
      python examples/coverage_analysis.py TWC 0.5 1.5 6.0
"""

import sys

from repro import SimulationOptions, simulate
from repro.benchmarks import benchmark_stimuli, build_benchmark
from repro.coverage import Metric
from repro.schedule import preprocess

HUGE_STEPS = 2_000_000_000  # effectively unbounded; the budget stops the run


def coverage_row(prog, engine, budget):
    options = SimulationOptions(steps=HUGE_STEPS, time_budget=budget,
                                diagnostics=False)
    result = simulate(prog, benchmark_stimuli(prog), engine=engine, options=options)
    return result


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "TWC"
    budgets = [float(a) for a in sys.argv[2:]] or [0.5, 1.5, 6.0]

    model = build_benchmark(name)
    prog = preprocess(model)
    print(f"{name}: {model.n_actors} actors, {model.n_subsystems} subsystems\n")

    header = f"{'budget':>7s} {'engine':8s} {'steps':>12s} " + "".join(
        f"{m.title:>10s}" for m in Metric
    )
    print(header)
    for budget in budgets:
        for engine in ("accmos", "sse"):
            result = coverage_row(prog, engine, budget)
            cells = "".join(
                f"{result.coverage.percent(m):9.1f}%" for m in Metric
            )
            print(f"{budget:6.1f}s {engine:8s} {result.steps_run:>12,d} {cells}")
        print()

    print("AccMoS executes far more steps in the same budget, so every")
    print("metric saturates its reachable ceiling almost immediately,")
    print("while the interpreted engine is still climbing (paper Table 3).")


if __name__ == "__main__":
    main()

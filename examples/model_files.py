"""Working with model files and test-case tables.

Demonstrates the persistence layer: save a model to the two-part XML
format (actors part + relationships part, §3.1 of the paper), reload it,
drive it from an explicit CSV test-case table, and inspect the generated
C before it is compiled.

Run:  python examples/model_files.py
"""

import tempfile
from pathlib import Path

from repro import ModelBuilder, SimulationOptions, simulate
from repro.codegen import generate_c_program
from repro.dtypes import I32
from repro.instrument import build_plan
from repro.schedule import preprocess
from repro.slx import load_model, save_model
from repro.stimuli import TestCaseTable, load_csv, save_csv


def build_model():
    b = ModelBuilder("Thermostat")
    temp = b.inport("Temp", dtype=I32)        # tenths of a degree
    setpoint = b.inport("Setpoint", dtype=I32)
    error = b.sub("Error", setpoint, temp)
    calling = b.relational("Calling", ">", error, b.constant("Band", 5))
    heat = b.switch("Heat", b.constant("On", 1), calling, b.constant("Off", 0),
                    threshold=1)
    b.outport("HeatOut", heat)
    b.outport("ErrorOut", error)
    return b.build()


def main():
    workdir = Path(tempfile.mkdtemp(prefix="accmos_example_"))

    # --- save / reload the model file ---------------------------------
    model = build_model()
    model_path = workdir / "thermostat.xml"
    save_model(model, model_path)
    print(f"saved model file: {model_path} ({model_path.stat().st_size} bytes)")
    reloaded = load_model(model_path)
    assert reloaded.n_actors == model.n_actors

    # --- explicit test cases via CSV -----------------------------------
    table = TestCaseTable({
        "Temp":     [180, 190, 200, 215, 230, 210, 195, 185],
        "Setpoint": [210, 210, 210, 210, 210, 210, 210, 210],
    })
    csv_path = workdir / "testcases.csv"
    save_csv(table, csv_path)
    stimuli = load_csv(csv_path).to_stimuli()
    print(f"saved test cases: {csv_path} ({table.n_steps} steps, cycled)")

    prog = preprocess(reloaded)
    result = simulate(prog, stimuli, engine="accmos", steps=len(table.columns["Temp"]))
    print(f"one table pass -> HeatOut={result.outputs['HeatOut']}, "
          f"ErrorOut={result.outputs['ErrorOut']}")
    for step, value in result.monitored["Thermostat_HeatOut"]:
        print(f"  step {step}: heat={value}")

    # --- look at the generated simulation code ---------------------------
    plan = build_plan(prog)
    source, _ = generate_c_program(prog, plan, stimuli, SimulationOptions(steps=8))
    c_path = workdir / "thermostat_sim.c"
    c_path.write_text(source)
    print(f"\ngenerated C simulation: {c_path} "
          f"({source.count(chr(10)) + 1} lines)")
    marker = "/* Thermostat_Heat (Switch) */"
    snippet = source[source.index(marker):source.index(marker) + 400]
    print("switch actor with inlined condition coverage + diagnosis:\n")
    print("\n".join("    " + line for line in snippet.splitlines()[:8]))


if __name__ == "__main__":
    main()
